// cmd_plan — invert the model for planning targets.
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "core/planner.h"
#include "model/carbon_credit.h"
#include "util/table.h"

namespace cl::cli {

int cmd_plan(const Args& args) {
  const double target = args.get_double("target", 0.2);
  const double qb = args.get_double("qb", 1.0);
  const Metro& metro = metro_from_flag(args);
  const Seconds episode =
      Seconds::from_minutes(args.get_double("minutes", 30));
  std::cout << "\nplanning for S >= " << fmt_pct(target) << " at q/b = " << qb
            << " (" << episode.minutes() << "-minute programmes, metro "
            << metro.name() << "):\n\n";
  TextTable table({"model", "capacity for target",
                   "views/month for target", "carbon-neutral capacity",
                   "carbon-neutral views/month", "ceiling S"});
  for (const auto& params : standard_params()) {
    const SavingsModel model(params, metro.isp(0));
    const Planner planner(model);
    std::string cap = "unreachable", views = "-", ncap = "unreachable",
                nviews = "-";
    try {
      const double c = planner.capacity_for_savings(target, qb);
      cap = fmt(c, 2);
      views = fmt(planner.views_per_month_for_capacity(c, episode), 0);
    } catch (const InvalidArgument&) {
    }
    try {
      const double c = planner.carbon_neutral_capacity(qb);
      ncap = fmt(c, 2);
      nviews = fmt(planner.views_per_month_for_capacity(c, episode), 0);
    } catch (const InvalidArgument&) {
    }
    table.add_row({params.name, cap, views, ncap, nviews,
                   fmt_pct(model.savings_ceiling(qb))});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace cl::cli
