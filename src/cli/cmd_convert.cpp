// cmd_convert — convert traces between the CSV and binary columnar
// on-disk formats (the "generate once at full scale, reload in seconds"
// workflow: CSV for interchange, .cltrace for month-scale replay).
#include <chrono>
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "trace/trace_format.h"
#include "util/error.h"

namespace cl::cli {

int cmd_convert(const Args& args) {
  const auto in_path = args.get("in");
  const auto out_path = args.get("out");
  if (!in_path || !out_path) {
    throw ParseError("convert requires --in PATH and --out PATH");
  }
  const TraceFormat from = trace_format_from(args, "from");
  const TraceFormat to = trace_format_from(args, "to");
  const unsigned threads = threads_from(args);

  const auto t0 = std::chrono::steady_clock::now();
  const Trace trace = read_trace_any(*in_path, from, threads);
  const auto t1 = std::chrono::steady_clock::now();
  write_trace_any(*out_path, trace, to);
  const auto t2 = std::chrono::steady_clock::now();

  if (!args.has("quiet")) {
    const auto seconds = [](auto a, auto b) {
      return std::chrono::duration<double>(b - a).count();
    };
    std::cout << "converted " << trace.size() << " sessions ("
              << trace.span.value() / 86400.0 << " days): " << *in_path
              << " -> " << *out_path << "\n"
              << "  read " << seconds(t0, t1) << " s, write "
              << seconds(t1, t2) << " s\n";
  }
  return 0;
}

}  // namespace cl::cli
