// cmd_experiment — run a declarative experiment matrix from a JSON spec.
#include <iostream>

#include "cli/cli_common.h"
#include "cli/commands.h"
#include "experiment/experiment_runner.h"
#include "experiment/experiment_spec.h"

namespace cl::cli {

int cmd_experiment(const Args& args) {
  const auto spec_path = args.get("spec");
  if (!spec_path) {
    std::cerr << "experiment: missing spec path (cl experiment spec.json)"
              << "\n\n";
    return usage(2);
  }
  ExperimentRunConfig run_config;
  run_config.out_dir = args.get_or("out-dir", ".");
  run_config.threads = threads_from(args);
  const bool dry_run = args.has("dry-run");
  // A typo'd flag silently changing which cells run is worse than an
  // error — reject here instead of main.cpp's soft warning.
  for (const auto& flag : args.unused()) {
    throw ParseError("unknown flag --" + flag);
  }

  const ExperimentSpec spec = ExperimentSpec::parse_file(*spec_path);
  if (dry_run) {
    print_matrix(std::cout, spec);
    return 0;
  }

  std::cout << "experiment '" << spec.name() << "': running "
            << spec.cells().size() << " cells into " << run_config.out_dir
            << "\n";
  const ExperimentRunResult run =
      run_experiment(spec, run_config, &std::cout);
  std::cout << "wrote " << run.cells.size() << " cell files and manifest "
            << run.manifest_path << " (wall " << json_number(run.wall_seconds)
            << " s)\n";
  return 0;
}

}  // namespace cl::cli
