#!/usr/bin/env python3
"""Compare BENCH_*.json wall times between two runs.

Reads the bench JSON files (written by bench binaries via --json, see
bench/bench_json.h) from a baseline directory and a current directory,
prints a wall-time comparison table for every bench present in both, and
fails when a *guarded* bench regressed by more than the allowed fraction.

Only the closed-form benches (fig5/table3/table4 by default) guard the
build: they do no trace generation or simulation, so their wall time is a
stable proxy for the hot-path code itself rather than for workload-scale
knobs, and they are cheap enough to run on every CI commit.

`--require` names benches that must be present in the current run with
parseable metrics — it guards *coverage* rather than wall time, so a
bench silently dropping out of the CI harness (e.g. fig_cross_metro, the
cross-metro experiment) fails the run even though its workload-scale wall
time is never gated.

`--min bench:metric:value` (repeatable) asserts an absolute floor on a
metric of the current run, with no baseline involved — e.g.
`--min micro_sweep:soa_over_row_speedup:5.0` pins the SoA sweep's
speedup bar so a hot-path regression fails even on the very first run
of a branch (where the wall-time comparison has nothing to compare).

Exit codes: 0 ok (including "no baseline yet"), 1 regression or missing
required bench, 2 usage.
"""

import argparse
import json
import sys
from pathlib import Path


def load_benches(directory: Path) -> dict:
    """Maps bench name -> parsed JSON for every BENCH_*.json under
    `directory` (searched recursively: artifact downloads may nest)."""
    benches = {}
    for path in sorted(directory.rglob("BENCH_*.json")):
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {path}: {e}")
            continue
        name = data.get("bench")
        if not name or "wall_seconds" not in data:
            print(f"warning: skipping {path}: missing bench/wall_seconds")
            continue
        benches[name] = data
    return benches


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=Path,
                        help="directory with the previous run's BENCH_*.json")
    parser.add_argument("--current", required=True, type=Path,
                        help="directory with this run's BENCH_*.json")
    parser.add_argument("--benches", default="fig5,table3,table4",
                        help="comma-separated bench names whose regression "
                             "fails the run (default: the closed-form "
                             "benches)")
    parser.add_argument("--require", default="",
                        help="comma-separated bench names that must be "
                             "present in the current run (coverage gate; "
                             "their wall time is not compared unless they "
                             "are also in --benches)")
    parser.add_argument("--min", action="append", default=[],
                        dest="floors", metavar="BENCH:METRIC:VALUE",
                        help="absolute floor on a current-run metric, e.g. "
                             "micro_sweep:soa_over_row_speedup:5.0 — fails "
                             "when the bench/metric is missing or the value "
                             "is below the floor (repeatable)")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional wall-time increase for "
                             "guarded benches (default 0.25 = +25%%)")
    parser.add_argument("--min-wall-delta", type=float, default=0.02,
                        help="ignore regressions whose absolute wall-time "
                             "increase is below this many seconds — the "
                             "closed-form benches run in milliseconds, so "
                             "a pure percentage gate would either trip on "
                             "scheduler noise or (with a minimum-wall "
                             "floor) never fire at all; an absolute delta "
                             "floor catches real regressions only "
                             "(default 0.02)")
    args = parser.parse_args()

    if not args.current.is_dir():
        print(f"error: current directory {args.current} does not exist")
        return 2
    current = load_benches(args.current)
    if not current:
        print(f"error: no BENCH_*.json found under {args.current}")
        return 2

    required = {b.strip() for b in args.require.split(",") if b.strip()}
    missing = sorted(required - set(current))
    if missing:
        print(f"FAIL: required benches missing from {args.current}: "
              f"{', '.join(missing)}")
        return 1
    for name in sorted(required):
        metrics = current[name].get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            print(f"FAIL: required bench {name} has no metrics object")
            return 1

    floor_failures = []
    for spec in args.floors:
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            print(f"error: bad --min spec {spec!r} "
                  "(want BENCH:METRIC:VALUE)")
            return 2
        bench, metric, raw = parts
        try:
            floor = float(raw)
        except ValueError:
            print(f"error: bad --min value in {spec!r}")
            return 2
        value = current.get(bench, {}).get("metrics", {}).get(metric)
        if not isinstance(value, (int, float)):
            floor_failures.append(f"{bench}:{metric} missing from current "
                                  f"run (floor {floor:g})")
            continue
        status = "ok" if value >= floor else "FAIL"
        print(f"floor {bench}:{metric} = {value:g} "
              f"(>= {floor:g}) ... {status}")
        if value < floor:
            floor_failures.append(f"{bench}:{metric} = {value:g} "
                                  f"below floor {floor:g}")
    if floor_failures:
        print("FAIL: metric floors not met:")
        for failure in floor_failures:
            print(f"  {failure}")
        return 1

    if not args.baseline.is_dir():
        print(f"no baseline at {args.baseline} — first run, nothing to "
              "compare (pass)")
        return 0
    baseline = load_benches(args.baseline)
    if not baseline:
        print(f"no baseline BENCH_*.json under {args.baseline} — pass")
        return 0

    guarded = {b.strip() for b in args.benches.split(",") if b.strip()}
    failures = []
    print(f"{'bench':<24} {'baseline s':>12} {'current s':>12} "
          f"{'delta':>8}  guarded")
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline or name not in current:
            where = "baseline" if name not in current else "current"
            print(f"{name:<24} {'—':>12} {'—':>12} {'—':>8}  "
                  f"(only in {where})")
            continue
        base_wall = float(baseline[name]["wall_seconds"])
        cur_wall = float(current[name]["wall_seconds"])
        delta = (cur_wall - base_wall) / base_wall if base_wall > 0 else 0.0
        is_guarded = name in guarded
        marker = "yes" if is_guarded else "no"
        print(f"{name:<24} {base_wall:>12.4f} {cur_wall:>12.4f} "
              f"{delta:>+7.1%}  {marker}")
        if (is_guarded and base_wall > 0 and delta > args.max_regression
                and cur_wall - base_wall >= args.min_wall_delta):
            failures.append((name, base_wall, cur_wall, delta))

    if failures:
        print(f"\nFAIL: wall-time regression above "
              f"{args.max_regression:.0%} on guarded benches:")
        for name, base_wall, cur_wall, delta in failures:
            print(f"  {name}: {base_wall:.4f}s -> {cur_wall:.4f}s "
                  f"({delta:+.1%})")
        return 1
    print("\nok: no guarded bench regressed beyond "
          f"{args.max_regression:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
