#!/usr/bin/env python3
"""Drift check: `cl --help` / the CLI source vs docs/CLI.md.

docs/CLI.md promises to be the complete flag-by-flag reference for the
`cl` binary. Documentation rots silently, so this script cross-checks
three flag inventories and fails CI on any mismatch:

  * CODE  — every flag the CLI source actually reads
            (`args.get/get_or/get_int/get_double/has("...")` plus the
            `trace_format_from(args, "...")` indirection and the
            boolean-switch list passed to Args::parse);
  * HELP  — every `--flag` token the built binary prints from
            `cl --help` (falls back to scanning the usage text in the
            CLI source when no binary is given);
  * DOCS  — every `--flag` token in docs/CLI.md.

Checks:
  1. CODE ⊆ DOCS — a flag was added to the CLI without a docs entry;
  2. HELP ⊆ DOCS — the help text mentions a flag the docs do not;
  3. DOCS ⊆ CODE ∪ HELP — the docs document a flag that no longer
     exists (stale reference);
  4. every subcommand dispatched in main.cpp has a `## cl <name>`
     section in the docs and appears in the help text.

Exit codes: 0 ok, 1 drift found, 2 usage/environment error.
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

FLAG_READ_RE = re.compile(
    r'args\.(?:has|get|get_or|get_int|get_double)\(\s*"([a-z0-9-]+)"')
FORMAT_HELPER_RE = re.compile(r'trace_format_from\(args(?:,\s*"([a-z0-9-]+)")?\)')
BOOLEAN_LIST_RE = re.compile(r'Args::parse\([^;]*?\{([^}]*)\}', re.DOTALL)
FLAG_TOKEN_RE = re.compile(r'--([a-z][a-z0-9-]*)')
COMMAND_DISPATCH_RE = re.compile(r'command == "([a-z]+)"')
DOC_SECTION_RE = re.compile(r'^## cl ([a-z]+)', re.MULTILINE)


def read_sources(src_dir: Path) -> dict:
    sources = {}
    for path in sorted(src_dir.glob("*.cpp")) + sorted(src_dir.glob("*.h")):
        sources[path] = path.read_text(encoding="utf-8")
    if not sources:
        print(f"error: no CLI sources found under {src_dir}")
        sys.exit(2)
    return sources


def code_flags(sources: dict) -> set:
    flags = set()
    for text in sources.values():
        flags.update(FLAG_READ_RE.findall(text))
        for match in FORMAT_HELPER_RE.finditer(text):
            flags.add(match.group(1) or "format")
        for group in BOOLEAN_LIST_RE.findall(text):
            flags.update(re.findall(r'"([a-z0-9-]+)"', group))
    # `trace_format_from`'s own definition reads through a variable named
    # `flag`; the regexes above resolve the call sites instead, so drop
    # any accidental capture of the parameter default.
    return flags


def help_flags(cl_binary, sources: dict) -> set:
    if cl_binary:
        try:
            proc = subprocess.run([cl_binary, "--help"], capture_output=True,
                                  text=True, timeout=60, check=False)
        except OSError as e:
            print(f"error: cannot run {cl_binary}: {e}")
            sys.exit(2)
        if proc.returncode != 0:
            print(f"error: {cl_binary} --help exited {proc.returncode}")
            sys.exit(2)
        return set(FLAG_TOKEN_RE.findall(proc.stdout + proc.stderr))
    # No binary (local runs before a build): the usage text lives in the
    # CLI source as a raw string, so scanning the sources for --tokens
    # covers it (plus doc comments, which only ever name real flags).
    flags = set()
    for text in sources.values():
        flags.update(FLAG_TOKEN_RE.findall(text))
    return flags


def commands(sources: dict) -> set:
    cmds = set()
    for text in sources.values():
        cmds.update(COMMAND_DISPATCH_RE.findall(text))
    return cmds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cl", default=None,
                        help="path of the built cl binary (enables the "
                             "real `cl --help` comparison; without it the "
                             "usage text is scanned from source)")
    parser.add_argument("--src", default="src/cli", type=Path,
                        help="CLI source directory (default: src/cli)")
    parser.add_argument("--docs", default="docs/CLI.md", type=Path,
                        help="reference file (default: docs/CLI.md)")
    args = parser.parse_args()

    if not args.docs.is_file():
        print(f"error: {args.docs} not found")
        return 2
    docs_text = args.docs.read_text(encoding="utf-8")
    docs = set(FLAG_TOKEN_RE.findall(docs_text))
    doc_sections = set(DOC_SECTION_RE.findall(docs_text))

    sources = read_sources(args.src)
    code = code_flags(sources)
    help_ = help_flags(args.cl, sources)
    cmds = commands(sources)

    failures = []
    missing_from_docs = sorted((code | help_) - docs)
    if missing_from_docs:
        origin = {f: ("code" if f in code else "help") for f in
                  missing_from_docs}
        failures.append(
            "flags without a docs/CLI.md entry: "
            + ", ".join(f"--{f} ({origin[f]})" for f in missing_from_docs))
    stale = sorted(docs - (code | help_))
    if stale:
        failures.append(
            "docs/CLI.md documents flags that no longer exist: "
            + ", ".join(f"--{f}" for f in stale))
    undocumented_cmds = sorted(cmds - doc_sections)
    if undocumented_cmds:
        failures.append(
            "subcommands without a `## cl <name>` docs section: "
            + ", ".join(undocumented_cmds))
    stale_cmds = sorted(doc_sections - cmds)
    if stale_cmds:
        failures.append(
            "docs sections for subcommands that no longer exist: "
            + ", ".join(stale_cmds))

    print(f"commands: {len(cmds)} dispatched, {len(doc_sections)} documented")
    print(f"flags: {len(code)} read in code, {len(help_)} in help, "
          f"{len(docs)} documented")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        print("fix: update docs/CLI.md (and the usage text in "
              "src/cli/cmd_ledger.cpp) alongside the flag change")
        return 1
    print("OK: docs/CLI.md is in lockstep with the CLI")
    return 0


if __name__ == "__main__":
    sys.exit(main())
