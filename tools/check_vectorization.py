#!/usr/bin/env python3
"""Vectorization drift gate for the sweep's scalar fallback loops.

The sweep's hottest kernels are hand-vectorized (sim/sweep_kernels.h),
but the *scalar twins* — what `CL_SIMD=off` and non-intrinsic builds
run — plus a handful of hot loops outside the kernels still lean on the
auto-vectorizer. Auto-vectorization is fragile: an innocent-looking edit
(a new branch, an escaping pointer, a call the compiler can't inline)
silently drops a loop back to scalar code and nobody notices until a
bench regresses. This gate makes that drift loud.

How it works:

  1. Hot loops that must stay auto-vectorized carry a marker comment on
     the line directly above the `for`:  `// [vec:NAME]`.
  2. This script compiles the sweep translation units with GCC's
     `-fopt-info-vec-optimized` remarks, `-DCL_SIMD_FORCE_SCALAR=1` (so
     the scalar kernel twins are what the optimizer sees — the gate
     checks the fallback, not the intrinsics) and `-march=x86-64-v4`
     (the widest x86-64 baseline: the gate asks "is the loop shape
     vectorizable", independent of the host CPU — nothing is executed).
  3. Every marker must be matched by a `loop vectorized` remark within
     MATCH_WINDOW lines below it, and every name in ALLOWLIST must have
     a marker in the sources — so deleting a marked loop (or the marker)
     fails too, instead of silently shrinking the gate.

Exit codes: 0 ok, 1 drift found, 2 usage/environment error.
"""

import argparse
import re
import subprocess
import sys
from pathlib import Path

# Translation units the gate compiles.
TRANSLATION_UNITS = [
    "src/sim/swarm_sweep.cpp",
    "src/sim/hybrid_sim.cpp",
]

# Files scanned for [vec:NAME] markers: the TUs plus the kernel header
# they include (remarks carry the header's own path/line).
MARKER_FILES = TRANSLATION_UNITS + [
    "src/sim/sweep_kernels.h",
]

# Every loop the gate enforces. A name listed here without a marker in
# the sources is an error; a marker in the sources that is not listed
# here is also an error (keep the two in lockstep on purpose).
ALLOWLIST = {
    "metro-fit-isp",       # hybrid_sim.cpp: trace/metro fit, ISP max-reduce
    "metro-fit-exp",       # hybrid_sim.cpp: trace/metro fit, ExP bound check
    "watch-stripe-fold",   # sweep_kernels.h: stripe-8 accumulator fold
    "rows-watch-fold",     # swarm_sweep.cpp: sweep_rows' stripe fold
}

MARKER_RE = re.compile(r"//\s*\[vec:([a-z0-9-]+)\]")
REMARK_RE = re.compile(
    r"^(?P<file>[^\s:]+):(?P<line>\d+):\d+:\s+optimized:.*loop vectorized")

# A remark must land within this many lines below its marker comment.
MATCH_WINDOW = 4

FLAGS = [
    "-std=c++20",
    "-O3",
    "-march=x86-64-v4",
    "-DCL_SIMD_FORCE_SCALAR=1",
    "-ffp-contract=off",
    "-fopt-info-vec-optimized",
    "-Isrc",
    "-c",
    "-o",
    "/dev/null",
]


def find_markers(root: Path) -> dict[str, tuple[str, int]]:
    """name -> (relative file, 1-based line of the marker comment)."""
    markers: dict[str, tuple[str, int]] = {}
    for rel in MARKER_FILES:
        path = root / rel
        if not path.is_file():
            sys.exit(f"error: marker file missing: {rel}")
        for lineno, text in enumerate(path.read_text().splitlines(), 1):
            for name in MARKER_RE.findall(text):
                if name in markers:
                    sys.exit(f"error: duplicate marker [vec:{name}] "
                             f"({markers[name][0]} and {rel}:{lineno})")
                markers[name] = (rel, lineno)
    return markers


def collect_remarks(root: Path, compiler: str,
                    verbose: bool) -> set[tuple[str, int]]:
    """(relative file, line) of every 'loop vectorized' remark."""
    remarks: set[tuple[str, int]] = set()
    for tu in TRANSLATION_UNITS:
        cmd = [compiler, *FLAGS, tu]
        proc = subprocess.run(cmd, cwd=root, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            sys.exit(f"error: compile failed: {' '.join(cmd)}")
        for line in proc.stderr.splitlines():
            match = REMARK_RE.match(line)
            if match:
                remarks.add((match.group("file"), int(match.group("line"))))
                if verbose:
                    print(f"  remark: {line}")
    return remarks


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compiler", default="g++",
                        help="GCC-compatible compiler to probe (default g++)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every vectorization remark seen")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    markers = find_markers(root)

    unknown = set(markers) - ALLOWLIST
    missing_marker = ALLOWLIST - set(markers)
    if unknown:
        print("error: markers not in the allowlist (add them to "
              "tools/check_vectorization.py):")
        for name in sorted(unknown):
            rel, line = markers[name]
            print(f"  [vec:{name}] at {rel}:{line}")
    if missing_marker:
        print("error: allowlisted loops with no [vec:...] marker in the "
              "sources (loop deleted, or marker dropped?):")
        for name in sorted(missing_marker):
            print(f"  [vec:{name}]")
    if unknown or missing_marker:
        return 1

    remarks = collect_remarks(root, args.compiler, args.verbose)

    failed = []
    for name in sorted(ALLOWLIST):
        rel, line = markers[name]
        hit = any((rel, line + off) in remarks
                  for off in range(1, MATCH_WINDOW + 1))
        status = "ok" if hit else "DEVECTORIZED"
        print(f"  [vec:{name}] {rel}:{line} ... {status}")
        if not hit:
            failed.append(name)

    if failed:
        print(f"\nerror: {len(failed)} marked loop(s) no longer "
              "auto-vectorize. Either restore the vectorizable shape, or "
              "hand-vectorize the loop in sim/sweep_kernels.h and update "
              "the allowlist.")
        return 1
    print(f"OK: all {len(ALLOWLIST)} marked loops vectorize "
          "(scalar-fallback build, -march=x86-64-v4)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
