// fig_cross_metro — the cross-metro experiment: replay the *same*
// catalogue/demand (the calibrated scaled London month, same seed, same
// users) through every metro preset of the topology registry and compare
// the resulting Valancius/Baliga daily-savings bands.
//
// The paper fixes one metro (london_top5); its model is parametric in the
// ISP tree shape, and related CDN-energy work (Valancius et al.'s
// nano-datacenter model, Baliga et al.'s energy accounting) shows savings
// are sensitive to the aggregation-tree fan-out. This bench makes that
// sensitivity measurable: per preset it reports the Table III-style
// localisation probabilities of the largest ISP and the per-day aggregate
// savings band (mean/min/max of ISP-1, plus the whole-system headline).
//
// Reading the bands: sparse-ExP trees (us_sparse, 40 ExPs) localise
// mid-size swarms at the exchange point quickly, even though their
// *sub-core* localisation — the chance two peers share any layer below
// the core, 1/n_pop — is lower than London's (1/12 vs 1/9); their band
// sits highest. Dense-ExP fiber trees (900 ExPs) pay the opposite tree
// effect (mid swarms stay PoP/core-bound; at equal capacity their
// per-bit peer cost is the highest of the three, pinned in
// tests/test_metro_registry.cpp), but the metro's concentrated 3-ISP
// market enlarges per-ISP swarms and roughly cancels it — the two
// fan-out knobs (ExPs per tree, ISPs per metro) pull the band in
// opposite directions.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "topology/metro_registry.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  double days = 30;
  bench::Runner run("fig_cross_metro", argc, argv, [&](const Args& args) {
    days = args.get_double("days", days);
  });
  bench::banner("cross-metro experiment — savings bands per metro preset",
                "same catalogue/demand through every registry metro; "
                "savings depend on the aggregation-tree fan-out");

  const MetroRegistry& registry = MetroRegistry::instance();
  double total_sessions = 0;

  TextTable localisation({"metro", "ISPs", "ISP-1 ExPs", "ISP-1 PoPs",
                          "p_exp", "p_pop (sub-core)"});
  TextTable bands({"metro", "model", "ISP-1 mean", "ISP-1 min", "ISP-1 max",
                   "system"});

  for (const auto& preset : registry.presets()) {
    const Metro& metro = registry.get(preset.name);

    TraceConfig config = TraceConfig::london_month_scaled(days);
    config.metro = preset.name;
    config.threads = run.threads();
    const Trace trace = TraceGenerator(config, metro).generate();
    total_sessions += static_cast<double>(trace.size());

    SimConfig sim_config;
    sim_config.threads = run.threads();
    const Analyzer analyzer(metro, sim_config);
    const auto report = analyzer.daily_report(trace);
    const auto outcomes = analyzer.aggregate(trace);

    const auto& isp1 = metro.isp(0);
    const auto loc = isp1.localisation();
    localisation.add_row({preset.name, std::to_string(metro.isp_count()),
                          std::to_string(isp1.exchange_points()),
                          std::to_string(isp1.pops()), fmt_pct(loc.exp, 2),
                          fmt_pct(loc.pop, 2)});
    run.metrics().set(preset.name + "_isp_count", metro.isp_count());
    run.metrics().set(preset.name + "_isp1_exchange_points",
                      static_cast<std::int64_t>(isp1.exchange_points()));
    run.metrics().set(preset.name + "_isp1_pops",
                      static_cast<std::int64_t>(isp1.pops()));
    run.metrics().set(preset.name + "_p_exp", loc.exp);
    run.metrics().set(preset.name + "_p_pop", loc.pop);
    run.metrics().set(preset.name + "_subcore_localisation", loc.pop);
    run.metrics().set(preset.name + "_sessions",
                      static_cast<std::int64_t>(trace.size()));

    for (std::size_t m = 0; m < report.models.size(); ++m) {
      std::vector<double> isp1_series;
      for (std::size_t d = 0; d < report.sim[m].size(); ++d) {
        isp1_series.push_back(report.sim[m][d][0]);
      }
      const auto band = summarize(isp1_series);
      bands.add_row({preset.name, report.models[m], fmt_pct(band.mean),
                     fmt_pct(band.min), fmt_pct(band.max),
                     fmt_pct(outcomes[m].sim_savings)});
      const std::string key = preset.name + "_isp1_";
      run.metrics().set(key + "mean_sim_savings_" + report.models[m],
                        band.mean);
      run.metrics().set(key + "min_sim_savings_" + report.models[m],
                        band.min);
      run.metrics().set(key + "max_sim_savings_" + report.models[m],
                        band.max);
      run.metrics().set(
          preset.name + "_system_sim_savings_" + report.models[m],
          outcomes[m].sim_savings);
      run.metrics().set(
          preset.name + "_system_theory_savings_" + report.models[m],
          outcomes[m].theory_savings);
    }
  }
  run.set_items(total_sessions, "sessions");

  std::cout << "\nISP-1 tree shape and Table III localisation "
               "probabilities per metro:\n";
  localisation.print(std::cout);
  std::cout << "\ndaily aggregate savings bands over " << days
            << " days (simulated):\n";
  bands.print(std::cout);
  std::cout << "\nthe sub-core localisation column (1/n_pop) is what drops "
               "in the sparse-ExP metro relative to London while its "
               "per-ExP localisation (1/n_exp) rises — fast ExP-level "
               "localisation puts its band on top. The fiber metro's "
               "dense ExP layer is the costliest tree at equal swarm "
               "capacity, but its 3-ISP market concentration enlarges "
               "per-ISP swarms and roughly cancels the tree effect.\n";
  return run.finish();
}
