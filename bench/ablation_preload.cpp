// ablation_preload — the paper's predictive-preloading future-work
// direction (ref [17] Take-Away TV): synchronising a fraction of sessions
// into a morning preload window concentrates swarms and raises offload.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "ext/preload.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("ablation_preload", argc, argv);
  bench::banner("Ablation (extension) — predictive preloading",
                "a fraction of sessions moves into a 07:00-09:00 preload "
                "window (timing shift only, see ext/preload.h)");

  TraceConfig config = TraceConfig::london_month_scaled(/*days=*/10);
  config.threads = run.threads();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());
  const Trace trace = gen.generate();
  run.set_items(static_cast<double>(trace.size()) * 5, "sessions");

  SimConfig sim_config;
  sim_config.threads = run.threads();
  sim_config.collect_hourly = false;
  sim_config.collect_per_user = false;
  sim_config.collect_swarms = false;
  HybridSimulator sim(bench::metro(), sim_config);

  TextTable table({"preload adoption", "offload G", "S (Valancius)",
                   "S (Baliga)"});
  for (double adoption : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Trace shifted = apply_preload(trace, {.adoption = adoption},
                                        config.seed);
    const auto result = sim.run(shifted);
    std::vector<std::string> row{fmt_pct(adoption, 0)};
    row.push_back(fmt_pct(result.total.offload_fraction()));
    for (const auto& params : standard_params()) {
      const EnergyAccountant accountant{CostFunctions(params)};
      row.push_back(fmt_pct(accountant.savings(result.total)));
    }
    table.add_row(row);
    if (adoption == 0.0 || adoption == 1.0) {
      const std::string key =
          adoption == 0.0 ? "no_preload" : "full_preload";
      run.metrics().set(key + "_offload", result.total.offload_fraction());
      for (const auto& params : standard_params()) {
        const EnergyAccountant accountant{CostFunctions(params)};
        run.metrics().set(key + "_savings_" + params.name,
                          accountant.savings(result.total));
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: demand synchronisation is a cheap lever — it "
               "raises instantaneous swarm sizes without adding a single "
               "byte of demand, exactly the effect the paper expects from "
               "predictive preloading.\n";
  return run.finish();
}
