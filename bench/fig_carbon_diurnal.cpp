// fig_carbon_diurnal — the carbon-intensity experiment: replay the
// scaled month through every metro preset, then weight the *same*
// simulated hourly energy flows by every grid carbon-intensity preset
// (src/carbon/) and compare the resulting gCO₂ savings bands.
//
// The paper's ledger counts joules; this bench closes the loop to grams:
// a joule saved at solar noon (CAISO duck-curve trough) displaces far
// less carbon than one saved at the gas-fired evening peak — and the
// workload's evening-peaked diurnal demand lands most of its traffic
// exactly where the UK/CAISO curves are most carbon-intense. The
// simulation runs once per metro; every intensity × energy-model cell is
// pure post-processing of the hourly grid, so the sweep costs one
// cross-metro replay regardless of how many curves are registered.
//
// Reading the bands: under `flat` the carbon savings equal the energy
// savings exactly (the backward-compatibility contract pinned in
// tests/test_carbon_intensity.cpp); diurnal curves shift both the
// absolute grams and the savings fraction, and the per-day band
// (mean/min/max of the daily gCO₂ savings) shows how stable that shift
// is across the month.
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "carbon/carbon_accountant.h"
#include "carbon/intensity_curve.h"
#include "sim/hybrid_sim.h"
#include "topology/metro_registry.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  double days = 30;
  bench::Runner run("fig_carbon_diurnal", argc, argv, [&](const Args& args) {
    days = args.get_double("days", days);
  });
  bench::banner(
      "carbon-intensity experiment — gCO2 savings bands per metro x grid",
      "same hourly energy flows weighted by every 24-h gCO2/kWh preset; "
      "flat reproduces the energy savings, diurnal grids shift them");

  const MetroRegistry& metros = MetroRegistry::instance();
  const IntensityRegistry& intensities = IntensityRegistry::instance();
  double total_sessions = 0;

  TextTable bands({"metro", "intensity", "model", "baseline kgCO2",
                   "saved kgCO2", "carbon S", "energy S", "daily min",
                   "daily max"});

  for (const auto& metro_preset : metros.presets()) {
    const Metro& metro = metros.get(metro_preset.name);

    TraceConfig config = TraceConfig::london_month_scaled(days);
    config.metro = metro_preset.name;
    config.threads = run.threads();
    const Trace trace = TraceGenerator(config, metro).generate();
    total_sessions += static_cast<double>(trace.size());

    SimConfig sim_config;
    sim_config.threads = run.threads();
    sim_config.collect_swarms = false;
    sim_config.collect_per_user = false;
    sim_config.collect_hourly = true;
    const SimResult result = HybridSimulator(metro, sim_config).run(trace);

    run.metrics().set(metro_preset.name + "_sessions",
                      static_cast<std::int64_t>(trace.size()));
    run.metrics().set(
        metro_preset.name + "_default_intensity",
        intensities.default_for_metro(metro_preset.name).name());

    for (const auto& params : standard_params()) {
      const EnergyAccountant energy{CostFunctions(params)};
      for (const auto& intensity_preset : intensities.presets()) {
        const CarbonAccountant accountant{
            energy, intensities.get(intensity_preset.name)};
        const CarbonOutcome outcome = accountant.assess(result.hourly);
        const auto band = summarize(
            accountant.daily_carbon_savings(result.hourly));

        bands.add_row({metro_preset.name, intensity_preset.name,
                       params.name, fmt(outcome.baseline_g / 1000.0, 1),
                       fmt(outcome.saved_g / 1000.0, 1),
                       fmt_pct(outcome.carbon_savings),
                       fmt_pct(outcome.energy_savings), fmt_pct(band.min),
                       fmt_pct(band.max)});

        const std::string key = metro_preset.name + "_" +
                                intensity_preset.name + "_" + params.name;
        run.metrics().set(key + "_gco2_baseline_kg",
                          outcome.baseline_g / 1000.0);
        run.metrics().set(key + "_gco2_hybrid_kg", outcome.hybrid_g / 1000.0);
        run.metrics().set(key + "_gco2_saved_kg", outcome.saved_g / 1000.0);
        run.metrics().set(key + "_carbon_savings", outcome.carbon_savings);
        run.metrics().set(key + "_energy_savings", outcome.energy_savings);
        run.metrics().set(key + "_daily_mean_carbon_savings", band.mean);
        run.metrics().set(key + "_daily_min_carbon_savings", band.min);
        run.metrics().set(key + "_daily_max_carbon_savings", band.max);
      }
    }
  }
  run.set_items(total_sessions, "sessions");

  std::cout << "\ngCO2 savings bands over " << days
            << " days (one simulation per metro, every intensity preset "
               "weighting the same hourly grid):\n";
  bands.print(std::cout);
  std::cout << "\nflat rows reproduce the energy savings exactly; diurnal "
               "rows differ because the evening-peaked demand concentrates "
               "energy where the grid is dirtiest (uk_2018 evening peak, "
               "us_caiso ramp) — absolute kgCO2 scales with the grid's "
               "mean (nordic_hydro is ~6x cleaner throughout).\n";
  return run.finish();
}
