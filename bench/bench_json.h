// bench_json.h — machine-readable benchmark output.
//
// Every paper bench accepts:
//   --json PATH    write a BENCH_<name>.json result file to PATH
//   --threads N    shard trace generation / simulation / analysis
//                  (0 = all cores)
//
// The JSON file carries the bench name, thread count, wall time, an
// optional throughput figure (items / items_per_second) and a "metrics"
// object of key model outputs, so a perf trajectory can be tracked across
// commits without scraping the human-readable tables.
//
// The writer itself lives in util/json_writer.h (the experiment runner
// emits the same BENCH_*.json shape from library code); this header adds
// the per-bench --json/--threads harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/args.h"
#include "util/error.h"
#include "util/json_writer.h"
#include "util/parallel.h"

namespace cl::bench {

using cl::json_number;
using cl::json_quote;
using cl::JsonObject;

/// Per-bench harness: parses --json/--threads, times the run, collects
/// key model outputs and writes the BENCH_<name>.json file on finish().
class Runner {
 public:
  /// `extra` lets a bench consume flags beyond --json/--threads (e.g.
  /// micro_trace_io's --sessions, fig4's --trace): it runs after the
  /// standard flags are read and before the unknown-flag check, so
  /// anything it reads is accepted and everything else still errors.
  /// `boolean_flags` lists valueless switches for Args::parse.
  Runner(std::string name, int argc, const char* const* argv,
         const std::function<void(const Args&)>& extra = {},
         std::set<std::string> boolean_flags = {})
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    try {
      const Args args = Args::parse(argc, argv, std::move(boolean_flags));
      json_path_ = args.get_or("json", "");
      const std::int64_t threads = args.get_int("threads", 1);
      if (threads < 0) throw ParseError("--threads must be >= 0");
      threads_ = static_cast<unsigned>(threads);
      if (extra) extra(args);
      // A typo'd flag silently changing an experiment is worse than an
      // error (same policy as the CLI, see util/args.h).
      for (const auto& flag : args.unused()) {
        throw ParseError("unknown flag --" + flag);
      }
    } catch (const ParseError& e) {
      // Bench mains have no try/catch of their own; exit cleanly instead
      // of letting the exception reach std::terminate.
      std::cerr << "argument error: " << e.what()
                << "\nusage: " << name_ << " [--json PATH] [--threads N]\n";
      std::exit(2);
    }
  }

  /// The --threads knob (0 = all cores), for TraceConfig/SimConfig —
  /// generation, the simulator's per-swarm sweep, and analysis all
  /// shard on it.
  [[nodiscard]] unsigned threads() const { return threads_; }
  /// The knob resolved against the actual hardware.
  [[nodiscard]] unsigned resolved_threads() const {
    return resolve_threads(threads_);
  }

  /// Key model outputs of this bench (savings, offload, agreement, ...).
  [[nodiscard]] JsonObject& metrics() { return metrics_; }

  /// Declares the throughput unit of work (e.g. sessions simulated);
  /// finish() derives <unit>s-per-second from it.
  void set_items(double count, std::string unit = "items") {
    items_ = count;
    items_unit_ = std::move(unit);
  }

  /// Stamps the wall time, writes the JSON file when --json was given and
  /// returns the process exit code.
  int finish() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (json_path_.empty()) return 0;
    JsonObject root;
    root.set("bench", name_);
    root.set("schema_version", std::int64_t{1});
    root.set("threads", static_cast<std::int64_t>(resolved_threads()));
    root.set("wall_seconds", wall);
    if (items_ > 0) {
      root.set(items_unit_, items_);
      root.set(items_unit_ + "_per_second", wall > 0 ? items_ / wall : 0.0);
    }
    root.set("metrics", metrics_);
    std::ofstream out(json_path_);
    if (!out) {
      std::cerr << "error: cannot write " << json_path_ << "\n";
      return 1;
    }
    out << root.render() << "\n";
    std::cout << "\n[bench] wrote " << json_path_ << " (wall "
              << json_number(wall) << " s, threads " << resolved_threads()
              << ")\n";
    return out.good() ? 0 : 1;
  }

 private:
  std::string name_;
  std::string json_path_;
  unsigned threads_ = 1;
  double items_ = 0;
  std::string items_unit_ = "items";
  JsonObject metrics_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cl::bench
