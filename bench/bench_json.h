// bench_json.h — machine-readable benchmark output.
//
// Every paper bench accepts:
//   --json PATH    write a BENCH_<name>.json result file to PATH
//   --threads N    shard trace generation / simulation / analysis
//                  (0 = all cores)
//
// The JSON file carries the bench name, thread count, wall time, an
// optional throughput figure (items / items_per_second) and a "metrics"
// object of key model outputs, so a perf trajectory can be tracked across
// commits without scraping the human-readable tables.
//
// No third-party JSON dependency: the writer below covers exactly the
// subset needed (objects, arrays of numbers, strings, finite/non-finite
// doubles) with deterministic formatting.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/args.h"
#include "util/error.h"
#include "util/parallel.h"

namespace cl::bench {

/// Escapes a string for inclusion in a JSON document (quotes included).
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Renders a double as a JSON number (round-trip precision); non-finite
/// values become null, as JSON has no representation for them.
inline std::string json_number(double x) {
  if (!std::isfinite(x)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  return buf;
}

/// Insertion-ordered JSON object builder.
class JsonObject {
 public:
  void set(const std::string& key, double value) {
    put(key, json_number(value));
  }
  void set(const std::string& key, std::int64_t value) {
    put(key, std::to_string(value));
  }
  void set(const std::string& key, std::size_t value) {
    put(key, std::to_string(value));
  }
  void set(const std::string& key, const char* value) {
    put(key, json_quote(value));
  }
  void set(const std::string& key, const std::string& value) {
    put(key, json_quote(value));
  }
  void set(const std::string& key, const JsonObject& value) {
    put(key, value.render());
  }
  void set(const std::string& key, const std::vector<double>& values) {
    std::string out = "[";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i) out += ", ";
      out += json_number(values[i]);
    }
    out += ']';
    put(key, out);
  }

  [[nodiscard]] bool empty() const { return fields_.empty(); }

  [[nodiscard]] std::string render() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += '}';
    return out;
  }

 private:
  void put(const std::string& key, std::string rendered) {
    for (auto& field : fields_) {
      if (field.first == key) {
        field.second = std::move(rendered);
        return;
      }
    }
    fields_.emplace_back(key, std::move(rendered));
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Per-bench harness: parses --json/--threads, times the run, collects
/// key model outputs and writes the BENCH_<name>.json file on finish().
class Runner {
 public:
  /// `extra` lets a bench consume flags beyond --json/--threads (e.g.
  /// micro_trace_io's --sessions, fig4's --trace): it runs after the
  /// standard flags are read and before the unknown-flag check, so
  /// anything it reads is accepted and everything else still errors.
  /// `boolean_flags` lists valueless switches for Args::parse.
  Runner(std::string name, int argc, const char* const* argv,
         const std::function<void(const Args&)>& extra = {},
         std::set<std::string> boolean_flags = {})
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    try {
      const Args args = Args::parse(argc, argv, std::move(boolean_flags));
      json_path_ = args.get_or("json", "");
      const std::int64_t threads = args.get_int("threads", 1);
      if (threads < 0) throw ParseError("--threads must be >= 0");
      threads_ = static_cast<unsigned>(threads);
      if (extra) extra(args);
      // A typo'd flag silently changing an experiment is worse than an
      // error (same policy as the CLI, see util/args.h).
      for (const auto& flag : args.unused()) {
        throw ParseError("unknown flag --" + flag);
      }
    } catch (const ParseError& e) {
      // Bench mains have no try/catch of their own; exit cleanly instead
      // of letting the exception reach std::terminate.
      std::cerr << "argument error: " << e.what()
                << "\nusage: " << name_ << " [--json PATH] [--threads N]\n";
      std::exit(2);
    }
  }

  /// The --threads knob (0 = all cores), for TraceConfig/SimConfig —
  /// generation, the simulator's per-swarm sweep, and analysis all
  /// shard on it.
  [[nodiscard]] unsigned threads() const { return threads_; }
  /// The knob resolved against the actual hardware.
  [[nodiscard]] unsigned resolved_threads() const {
    return resolve_threads(threads_);
  }

  /// Key model outputs of this bench (savings, offload, agreement, ...).
  [[nodiscard]] JsonObject& metrics() { return metrics_; }

  /// Declares the throughput unit of work (e.g. sessions simulated);
  /// finish() derives <unit>s-per-second from it.
  void set_items(double count, std::string unit = "items") {
    items_ = count;
    items_unit_ = std::move(unit);
  }

  /// Stamps the wall time, writes the JSON file when --json was given and
  /// returns the process exit code.
  int finish() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    if (json_path_.empty()) return 0;
    JsonObject root;
    root.set("bench", name_);
    root.set("schema_version", std::int64_t{1});
    root.set("threads", static_cast<std::int64_t>(resolved_threads()));
    root.set("wall_seconds", wall);
    if (items_ > 0) {
      root.set(items_unit_, items_);
      root.set(items_unit_ + "_per_second", wall > 0 ? items_ / wall : 0.0);
    }
    root.set("metrics", metrics_);
    std::ofstream out(json_path_);
    if (!out) {
      std::cerr << "error: cannot write " << json_path_ << "\n";
      return 1;
    }
    out << root.render() << "\n";
    std::cout << "\n[bench] wrote " << json_path_ << " (wall "
              << json_number(wall) << " s, threads " << resolved_threads()
              << ")\n";
    return out.good() ? 0 : 1;
  }

 private:
  std::string name_;
  std::string json_path_;
  unsigned threads_ = 1;
  double items_ = 0;
  std::string items_unit_ = "items";
  JsonObject metrics_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cl::bench
