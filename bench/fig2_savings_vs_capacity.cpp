// fig2_savings_vs_capacity — regenerates paper Fig. 2: energy savings
// estimated theoretically (Eq. 12 curve) and via simulation (dots), for
// exemplar highly popular / medium / unpopular content items, across the
// top-5 ISPs, for q/β ∈ {0.2, 0.4, 0.6, 0.8, 1.0}, under both energy
// parameter sets.
//
// The (tier, ISP, q/β) dot grid is 75 independent simulations, run in
// grid order with the simulator itself sharded across --threads workers
// (SimConfig::threads, replacing this bench's former bespoke grid
// sharding). Per-dot parallelism is bounded by the dot's sub-swarm count
// (bitrate split of one filtered content item), and the simulator's
// merge discipline keeps every dot bit-identical at any thread count.
#include <cmath>
#include <cstddef>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "trace/filter.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("fig2", argc, argv);
  bench::banner("Fig. 2 — savings vs swarm capacity (theory curve + sim dots)",
                "paper: popular item saves 35-48% (Valancius) / 24-29% "
                "(Baliga); unpopular always < 10%");

  TraceConfig config = TraceConfig::london_month_scaled();
  config.threads = run.threads();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());

  const char* tier_names[] = {"popular(100K)", "medium(10K)", "unpopular(1K)"};
  const std::vector<double> ratios{0.2, 0.4, 0.6, 0.8, 1.0};

  // Theory curves, printed once per model over a log capacity grid —
  // these are the black lines of Fig. 2.
  for (const auto& params : standard_params()) {
    std::cout << "\ntheory curve S(c) [" << params.name
              << ", ISP-1 tree], rows = q/b, cols = capacity:\n";
    std::vector<double> grid{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100};
    std::vector<std::string> header{"q/b \\ c"};
    for (double c : grid) header.push_back(fmt(c, 2));
    TextTable curve(header);
    const SavingsModel model(params, bench::metro().isp(0));
    for (double r : ratios) {
      std::vector<double> row;
      for (double c : grid) row.push_back(model.savings(c, r));
      curve.add_row_numeric(fmt(r, 1), row, 3);
    }
    curve.print(std::cout);
  }

  // Simulation dots: one dot per (tier, ISP, q/β); compared against the
  // theory value at the measured capacity. Pre-filter the per-(tier, ISP)
  // traces; each dot's simulation is itself sharded across workers.
  const std::size_t isp_count = bench::metro().isp_count();
  std::vector<Trace> tier_traces;
  std::vector<std::vector<Trace>> isp_traces(3);
  for (std::uint32_t tier = 0; tier < 3; ++tier) {
    tier_traces.push_back(gen.generate_content(tier));
    isp_traces[tier].reserve(isp_count);
    for (std::uint32_t isp = 0; isp < isp_count; ++isp) {
      isp_traces[tier].push_back(filter_by_isp(tier_traces[tier], isp));
    }
  }

  struct Dot {
    std::uint32_t tier = 0;
    std::uint32_t isp = 0;
    double ratio = 0;
  };
  std::vector<Dot> jobs;
  for (std::uint32_t tier = 0; tier < 3; ++tier) {
    for (std::uint32_t isp = 0; isp < isp_count; ++isp) {
      for (double ratio : ratios) {
        jobs.push_back({tier, isp, ratio});
      }
    }
  }
  std::vector<SwarmExperiment> dots(jobs.size());
  double sessions_simulated = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Dot& dot = jobs[i];
    SimConfig sim_config;
    sim_config.q_over_beta = dot.ratio;
    sim_config.threads = run.threads();
    const Analyzer analyzer(bench::metro(), sim_config);
    dots[i] =
        analyzer.analyze_swarm(isp_traces[dot.tier][dot.isp], dot.isp);
  }

  std::vector<double> sim_all, theo_all;
  std::size_t job = 0;
  for (std::uint32_t tier = 0; tier < 3; ++tier) {
    std::cout << "\n--- " << tier_names[tier] << ": "
              << tier_traces[tier].size() << " sessions/month ---\n";
    TextTable table({"ISP", "q/b", "capacity", "S sim (Val)", "S theo (Val)",
                     "S sim (Bal)", "S theo (Bal)"});
    for (std::uint32_t isp = 0; isp < isp_count; ++isp) {
      for (double ratio : ratios) {
        const SwarmExperiment& e = dots[job++];
        sessions_simulated += static_cast<double>(e.sessions);
        table.add_row({bench::metro().isp(isp).name(), fmt(ratio, 1),
                       fmt(e.capacity, 3), fmt(e.models[0].sim_savings, 4),
                       fmt(e.models[0].theory_savings, 4),
                       fmt(e.models[1].sim_savings, 4),
                       fmt(e.models[1].theory_savings, 4)});
        for (const auto& m : e.models) {
          sim_all.push_back(m.sim_savings);
          theo_all.push_back(m.theory_savings);
        }
      }
    }
    table.print(std::cout);
  }

  // Absolute gap statistics are more meaningful than relative ones here
  // (savings sit near zero for the unpopular tier).
  double abs_gap = 0;
  for (std::size_t i = 0; i < sim_all.size(); ++i) {
    abs_gap += std::abs(sim_all[i] - theo_all[i]);
  }
  abs_gap /= static_cast<double>(sim_all.size());
  const double r = pearson(sim_all, theo_all);
  std::cout << "\ntheory-vs-simulation agreement over all " << sim_all.size()
            << " dots:\n"
            << "  mean |S_sim - S_theo| = " << fmt(abs_gap, 4)
            << " (savings points); pearson r = " << fmt(r, 4) << "\n"
            << "paper's qualitative claim reproduced: theory curves are a "
               "good approximation of the simulated swarms.\n";

  // The dot of the paper's headline cell: popular tier, ISP-1, q/b = 1.
  const SwarmExperiment& headline = dots[ratios.size() - 1];
  run.metrics().set("dots", sim_all.size());
  run.metrics().set("mean_abs_gap", abs_gap);
  run.metrics().set("pearson_r", r);
  run.metrics().set("popular_isp1_capacity", headline.capacity);
  run.metrics().set("popular_isp1_sim_savings_valancius",
                    headline.models[0].sim_savings);
  run.metrics().set("popular_isp1_theory_savings_valancius",
                    headline.models[0].theory_savings);
  run.metrics().set("popular_isp1_sim_savings_baliga",
                    headline.models[1].sim_savings);
  run.metrics().set("popular_isp1_theory_savings_baliga",
                    headline.models[1].theory_savings);
  run.set_items(sessions_simulated, "sessions");
  return run.finish();
}
