// fig2_savings_vs_capacity — regenerates paper Fig. 2: energy savings
// estimated theoretically (Eq. 12 curve) and via simulation (dots), for
// exemplar highly popular / medium / unpopular content items, across the
// top-5 ISPs, for q/β ∈ {0.2, 0.4, 0.6, 0.8, 1.0}, under both energy
// parameter sets.
#include <iostream>

#include "bench_common.h"
#include "core/analyzer.h"
#include "trace/filter.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace cl;
  bench::banner("Fig. 2 — savings vs swarm capacity (theory curve + sim dots)",
                "paper: popular item saves 35-48% (Valancius) / 24-29% "
                "(Baliga); unpopular always < 10%");

  const TraceConfig config = TraceConfig::london_month_scaled();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());

  const char* tier_names[] = {"popular(100K)", "medium(10K)", "unpopular(1K)"};
  const double ratios[] = {0.2, 0.4, 0.6, 0.8, 1.0};

  // Theory curves, printed once per model over a log capacity grid —
  // these are the black lines of Fig. 2.
  for (const auto& params : standard_params()) {
    std::cout << "\ntheory curve S(c) [" << params.name
              << ", ISP-1 tree], rows = q/b, cols = capacity:\n";
    std::vector<double> grid{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100};
    std::vector<std::string> header{"q/b \\ c"};
    for (double c : grid) header.push_back(fmt(c, 2));
    TextTable curve(header);
    const SavingsModel model(params, bench::metro().isp(0));
    for (double r : ratios) {
      std::vector<double> row;
      for (double c : grid) row.push_back(model.savings(c, r));
      curve.add_row_numeric(fmt(r, 1), row, 3);
    }
    curve.print(std::cout);
  }

  // Simulation dots: one dot per (tier, ISP, q/β); compared against the
  // theory value at the measured capacity.
  std::vector<double> sim_all, theo_all;
  for (std::uint32_t tier = 0; tier < 3; ++tier) {
    const Trace content_trace = gen.generate_content(tier);
    std::cout << "\n--- " << tier_names[tier] << ": "
              << content_trace.size() << " sessions/month ---\n";
    TextTable table({"ISP", "q/b", "capacity", "S sim (Val)", "S theo (Val)",
                     "S sim (Bal)", "S theo (Bal)"});
    for (std::uint32_t isp = 0; isp < bench::metro().isp_count(); ++isp) {
      const Trace isp_trace = filter_by_isp(content_trace, isp);
      for (double ratio : ratios) {
        SimConfig sim_config;
        sim_config.q_over_beta = ratio;
        const Analyzer analyzer(bench::metro(), sim_config);
        const auto e = analyzer.analyze_swarm(isp_trace, isp);
        table.add_row({bench::metro().isp(isp).name(), fmt(ratio, 1),
                       fmt(e.capacity, 3), fmt(e.models[0].sim_savings, 4),
                       fmt(e.models[0].theory_savings, 4),
                       fmt(e.models[1].sim_savings, 4),
                       fmt(e.models[1].theory_savings, 4)});
        for (const auto& m : e.models) {
          sim_all.push_back(m.sim_savings);
          theo_all.push_back(m.theory_savings);
        }
      }
    }
    table.print(std::cout);
  }

  // Absolute gap statistics are more meaningful than relative ones here
  // (savings sit near zero for the unpopular tier).
  double abs_gap = 0;
  for (std::size_t i = 0; i < sim_all.size(); ++i) {
    abs_gap += std::abs(sim_all[i] - theo_all[i]);
  }
  abs_gap /= static_cast<double>(sim_all.size());
  std::cout << "\ntheory-vs-simulation agreement over all " << sim_all.size()
            << " dots:\n"
            << "  mean |S_sim - S_theo| = " << fmt(abs_gap, 4)
            << " (savings points); pearson r = "
            << fmt(pearson(sim_all, theo_all), 4) << "\n"
            << "paper's qualitative claim reproduced: theory curves are a "
               "good approximation of the simulated swarms.\n";
  return 0;
}
