// ablation_matching — existence-based matching (the analytical model's
// idealisation, used by the paper's theory-vs-sim comparison) versus
// capacity-constrained greedy matching with per-uploader budgets.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "trace/filter.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("ablation_matching", argc, argv);
  bench::banner("Ablation — existence vs capacity-constrained matching",
                "below q/b = 1 budget pooling lets several peers feed one "
                "downloader (the paper's SD-stream collaboration remark)");

  TraceConfig config = TraceConfig::london_month_scaled();
  config.threads = run.threads();
  TraceGenerator gen(config, bench::metro());
  const Trace popular = filter_by_isp(gen.generate_content(0), 0);
  std::cout << "workload: popular exemplar (100K views/month), ISP-1, "
            << popular.size() << " sessions\n\n";
  run.set_items(static_cast<double>(popular.size()) * 10, "sessions");

  TextTable table({"q/b", "G existence", "G capacity", "S(Val) existence",
                   "S(Val) capacity", "S(Bal) existence", "S(Bal) capacity"});
  for (double ratio : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    std::vector<std::string> row{fmt(ratio, 1)};
    std::vector<double> g(2);
    std::vector<std::array<double, 2>> s(2);
    for (int m = 0; m < 2; ++m) {
      SimConfig sim_config;
      sim_config.q_over_beta = ratio;
      sim_config.threads = run.threads();
      sim_config.matcher =
          m == 0 ? MatcherKind::kExistence : MatcherKind::kCapacity;
      sim_config.collect_hourly = false;
      sim_config.collect_per_user = false;
      sim_config.collect_swarms = false;
      const auto result =
          HybridSimulator(bench::metro(), sim_config).run(popular);
      g[m] = result.total.offload_fraction();
      int p = 0;
      for (const auto& params : standard_params()) {
        const EnergyAccountant accountant{CostFunctions(params)};
        s[m][p++] = accountant.savings(result.total);
      }
    }
    row.push_back(fmt_pct(g[0]));
    row.push_back(fmt_pct(g[1]));
    row.push_back(fmt(s[0][0], 4));
    row.push_back(fmt(s[1][0], 4));
    row.push_back(fmt(s[0][1], 4));
    row.push_back(fmt(s[1][1], 4));
    table.add_row(row);
    if (ratio == 0.2 || ratio == 1.0) {
      const std::string key = "qb" + fmt(ratio, 1);
      run.metrics().set(key + "_offload_existence", g[0]);
      run.metrics().set(key + "_offload_capacity", g[1]);
      run.metrics().set(key + "_savings_valancius_existence", s[0][0]);
      run.metrics().set(key + "_savings_valancius_capacity", s[1][0]);
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: at q/b = 1 the two matchers coincide (the "
               "analytical assumption is exact); below it, pooled upload "
               "budgets beat the model's per-pair limit, so Eq. 12 is "
               "conservative for constrained uplinks.\n";
  return run.finish();
}
