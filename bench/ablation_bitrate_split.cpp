// ablation_bitrate_split — cost of splitting swarms by bitrate class
// (a large-screen client cannot stream a phone's low-bitrate copy) versus
// hypothetical mixed-bitrate swarms.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("ablation_bitrate_split", argc, argv);
  bench::banner("Ablation — bitrate-split vs mixed-bitrate swarms",
                "the paper splits swarms per bitrate; this quantifies what "
                "transcoding-capable peers could recover");

  TraceConfig config = TraceConfig::london_month_scaled(/*days=*/10);
  config.threads = run.threads();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());
  const Trace trace = gen.generate();
  run.set_items(static_cast<double>(trace.size()) * 2, "sessions");

  TextTable table({"setting", "offload G", "S (Valancius)", "S (Baliga)"});
  for (bool split : {true, false}) {
    SimConfig sim_config;
    sim_config.split_by_bitrate = split;
    sim_config.threads = run.threads();
    sim_config.collect_hourly = false;
    sim_config.collect_per_user = false;
    sim_config.collect_swarms = false;
    const auto result =
        HybridSimulator(bench::metro(), sim_config).run(trace);
    const std::string setting = split ? "split" : "mixed";
    std::vector<std::string> row{split ? "split by bitrate (paper)"
                                       : "mixed-bitrate swarms"};
    row.push_back(fmt_pct(result.total.offload_fraction()));
    run.metrics().set("offload_" + setting, result.total.offload_fraction());
    for (const auto& params : standard_params()) {
      const EnergyAccountant accountant{CostFunctions(params)};
      row.push_back(fmt_pct(accountant.savings(result.total)));
      run.metrics().set("savings_" + setting + "_" + params.name,
                        accountant.savings(result.total));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nreading: merging bitrate classes enlarges every swarm "
               "(sub-swarm capacities add), which mostly helps the medium "
               "popularity band where capacity sits near 1.\n";
  return run.finish();
}
