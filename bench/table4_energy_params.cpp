// table4_energy_params — regenerates paper Table IV: the per-bit energy
// parameters of the Valancius et al. and Baliga et al. models, plus the
// derived per-bit cost functions (Eqs. 4–6) the rest of the system uses.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "energy/cost_functions.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("table4", argc, argv);
  bench::banner("Table IV — energy parameters (nJ/bit)",
                "paper values reproduced exactly; derived ψ rows added");

  TextTable table({"Variable", "Valancius, nJ/bit", "Baliga, nJ/bit"});
  const auto v = valancius_params();
  const auto b = baliga_params();
  auto row = [&](const char* name, double x, double y, int precision = 2) {
    table.add_row({name, fmt(x, precision), fmt(y, precision)});
  };
  row("Content Server (gamma_s)", v.gamma_server.value(),
      b.gamma_server.value());
  row("End User Modem (gamma_m)", v.gamma_modem.value(),
      b.gamma_modem.value());
  row("Traditional CDN Network (gamma_cdn)", v.gamma_cdn.value(),
      b.gamma_cdn.value());
  row("P2P Network within ExP (gamma_exp)",
      v.gamma_p2p_at(LocalityLevel::kExchangePoint).value(),
      b.gamma_p2p_at(LocalityLevel::kExchangePoint).value());
  row("P2P Network within PoP (gamma_pop)",
      v.gamma_p2p_at(LocalityLevel::kPop).value(),
      b.gamma_p2p_at(LocalityLevel::kPop).value());
  row("P2P Network within Core (gamma_core)",
      v.gamma_p2p_at(LocalityLevel::kCore).value(),
      b.gamma_p2p_at(LocalityLevel::kCore).value());
  row("Power Efficiency (PUE)", v.pue, b.pue);
  row("End-user energy loss (l)", v.loss, b.loss);
  table.print(std::cout);

  std::cout << "\nDerived per-bit cost functions (Eqs. 4-6):\n";
  TextTable derived({"quantity", "Valancius", "Baliga"});
  const CostFunctions cv(v), cb(b);
  derived.add_row({"psi_s (server path)", fmt(cv.psi_server().value(), 2),
                   fmt(cb.psi_server().value(), 2)});
  derived.add_row({"psi_p^m (2 modems)", fmt(cv.psi_peer_modem().value(), 2),
                   fmt(cb.psi_peer_modem().value(), 2)});
  for (auto level : kAllLocalityLevels) {
    derived.add_row({"psi_p @ " + std::string(to_string(level)),
                     fmt(cv.psi_peer(level).value(), 2),
                     fmt(cb.psi_peer(level).value(), 2)});
  }
  derived.print(std::cout);

  std::cout << "\nper-bit P2P-vs-server verdict (the paper's core trade-off):\n";
  for (const auto& params : standard_params()) {
    const CostFunctions costs(params);
    run.metrics().set("psi_server_" + params.name,
                      costs.psi_server().value());
    for (auto level : kAllLocalityLevels) {
      std::cout << "  " << params.name << " @ " << to_string(level) << ": "
                << (costs.peer_wins(level) ? "peer wins" : "server wins")
                << " (" << fmt(costs.psi_peer(level).value(), 1) << " vs "
                << fmt(costs.psi_server().value(), 1) << " nJ/bit)\n";
      run.metrics().set(
          "psi_peer_" + params.name + "_" + std::string(to_string(level)),
          costs.psi_peer(level).value());
    }
  }
  return run.finish();
}
