# run_benches.cmake — cmake -P driver that executes every paper bench with
# --json and collects the BENCH_<name>.json files in one directory.
#
# Invoked by the `bench_json` custom target with:
#   -DBENCH_DIR=<dir containing the bench executables>
#   -DOUT_DIR=<output directory for the json files>
#   -DBENCHES=<comma-separated bench target names>
#   -DTHREADS=<optional --threads value; empty = bench default>
if(NOT BENCH_DIR OR NOT OUT_DIR OR NOT BENCHES)
  message(FATAL_ERROR "run_benches.cmake needs -DBENCH_DIR, -DOUT_DIR and -DBENCHES")
endif()

string(REPLACE "," ";" bench_list "${BENCHES}")
file(MAKE_DIRECTORY "${OUT_DIR}")

set(failed "")
foreach(bench IN LISTS bench_list)
  # Short artefact name: fig2_savings_vs_capacity -> fig2 (ablations keep
  # their full name).
  string(REGEX REPLACE "^((fig|table)[0-9]+)_.*$" "\\1" short "${bench}")
  set(json "${OUT_DIR}/BENCH_${short}.json")
  set(cmd "${BENCH_DIR}/${bench}" --json "${json}")
  # Plain if(THREADS) would treat the meaningful value 0 (= all cores)
  # as "flag absent".
  if(DEFINED THREADS AND NOT THREADS STREQUAL "")
    list(APPEND cmd --threads "${THREADS}")
  endif()
  message(STATUS "running ${bench} -> ${json}")
  execute_process(COMMAND ${cmd}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(WARNING "${bench} failed (exit ${code}):\n${err}")
    list(APPEND failed "${bench}")
  endif()
endforeach()

if(failed)
  message(FATAL_ERROR "benches failed: ${failed}")
endif()
message(STATUS "all bench JSON written to ${OUT_DIR}")
