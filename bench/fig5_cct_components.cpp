// fig5_cct_components — regenerates paper Fig. 5: energy savings of each
// party (End-to-End, CDN, User) and the carbon-credit transfer balance as
// a function of swarm capacity, for both energy parameter sets.
//
// Pure closed-form sweep (no simulation): capacities span 1e-3..1e4 on a
// log grid exactly as the paper's x-axis.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "core/planner.h"
#include "model/carbon_credit.h"
#include "model/savings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("fig5", argc, argv);
  bench::banner("Fig. 5 — component savings vs swarm capacity",
                "paper: users end at +18% (Valancius) / +58% (Baliga) "
                "carbon positive as G -> 1");

  for (const auto& params : standard_params()) {
    const SavingsModel model(params, bench::metro().isp(0));
    std::cout << "\n" << params.name << " parameters:\n";
    TextTable table(
        {"capacity", "End-to-End", "CDN", "User", "CC Transfer"});
    for (double log_c = -3.0; log_c <= 4.01; log_c += 0.5) {
      const double c = std::pow(10.0, log_c);
      const auto comp = model.components(c, 1.0);
      table.add_row({fmt_sci(c, 1), fmt(comp.end_to_end, 4),
                     fmt(comp.cdn, 4), fmt(comp.user, 4),
                     fmt(comp.carbon_credit_transfer, 4)});
    }
    table.print(std::cout);

    const Planner planner(model);
    std::cout << "asymptotes & crossings (" << params.name << "):\n"
              << "  CCT ceiling (G->1): " << fmt_pct(cct_ceiling(params))
              << "  (paper: +18% Valancius / +58% Baliga)\n"
              << "  carbon-neutral offload G*: "
              << fmt_pct(carbon_neutral_offload(params)) << "\n"
              << "  capacity where users turn carbon neutral (q/b=1): "
              << fmt(planner.carbon_neutral_capacity(1.0), 1) << "\n"
              << "  end-to-end savings ceiling: "
              << fmt_pct(model.savings_ceiling(1.0)) << "\n";
    run.metrics().set("cct_ceiling_" + params.name, cct_ceiling(params));
    run.metrics().set("carbon_neutral_offload_" + params.name,
                      carbon_neutral_offload(params));
    run.metrics().set("carbon_neutral_capacity_" + params.name,
                      planner.carbon_neutral_capacity(1.0));
    run.metrics().set("savings_ceiling_" + params.name,
                      model.savings_ceiling(1.0));
  }
  return run.finish();
}
