// fig3_swarm_distributions — regenerates paper Fig. 3: the CCDF of
// per-swarm capacities (left) and of per-swarm energy savings (right)
// across the whole content catalogue, plus the paper's headline skew
// numbers (median per-item savings ~2 %; the top-1 % of items contribute
// >21 % / >33 % of all saved energy under Baliga / Valancius).
#include <algorithm>
#include <iostream>
#include <map>
#include <numeric>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "util/histogram.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("fig3", argc, argv);
  bench::banner("Fig. 3 — per-swarm capacity & savings distributions",
                "paper: few popular items, long unpopular tail; median "
                "per-item savings ~2%");

  TraceConfig config = TraceConfig::london_month_scaled();
  config.threads = run.threads();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());
  const Trace trace = gen.generate();
  run.set_items(static_cast<double>(trace.size()), "sessions");

  // The paper's Fig. 3 is per *content item*: aggregate the simulator's
  // (content, ISP, bitrate) swarms back to content granularity.
  SimConfig sim_config;
  sim_config.threads = run.threads();
  const Analyzer analyzer(bench::metro(), sim_config);
  const auto result = analyzer.simulate(trace);
  std::map<std::uint32_t, TrafficBreakdown> per_content_traffic;
  std::map<std::uint32_t, double> per_content_capacity;
  for (const auto& swarm : result.swarms) {
    per_content_traffic[swarm.key.content] += swarm.traffic;
    per_content_capacity[swarm.key.content] += swarm.capacity;
  }
  std::cout << "content items observed: " << per_content_traffic.size()
            << " (sub-swarms simulated: " << result.swarms.size() << ")\n";
  run.metrics().set("content_items", per_content_traffic.size());
  run.metrics().set("sub_swarms", result.swarms.size());

  std::vector<double> capacities;
  capacities.reserve(per_content_capacity.size());
  for (const auto& [content, capacity] : per_content_capacity) {
    capacities.push_back(capacity);
  }
  std::cout << "\nCCDF of per-item swarm capacity (Fig. 3 left):\n";
  TextTable cap_table({"capacity", "CCDF"});
  for (const auto& p : thin(empirical_ccdf(capacities), 20)) {
    cap_table.add_row({fmt_sci(p.x, 2), fmt_sci(p.y, 3)});
  }
  cap_table.print(std::cout);

  for (const auto& params : analyzer.models()) {
    const EnergyAccountant accountant{CostFunctions(params)};
    std::vector<double> savings;
    std::vector<double> saved_energy;
    double total_saved = 0;
    savings.reserve(per_content_traffic.size());
    for (const auto& [content, traffic] : per_content_traffic) {
      savings.push_back(accountant.savings(traffic));
      const double saved =
          accountant.baseline(traffic.total()).total().value() -
          accountant.hybrid(traffic).total().value();
      saved_energy.push_back(saved);
      total_saved += saved;
    }

    std::cout << "\nCCDF of per-item energy savings (Fig. 3 right, "
              << params.name << "):\n";
    TextTable s_table({"savings", "CCDF"});
    for (const auto& p : thin(empirical_ccdf(savings), 16)) {
      s_table.add_row({fmt(p.x, 4), fmt_sci(p.y, 3)});
    }
    s_table.print(std::cout);

    std::sort(savings.begin(), savings.end());
    const double median_savings = quantile_sorted(savings, 0.5);
    std::cout << "median per-item savings (" << params.name
              << "): " << fmt_pct(median_savings) << "  (paper: ~2%)\n";

    // Top-1 % share of total saved energy (paper: top-1 % of items obtain
    // >33 % of savings under Valancius, >21 % under Baliga).
    std::sort(saved_energy.begin(), saved_energy.end(), std::greater<>());
    const auto top = std::max<std::size_t>(1, saved_energy.size() / 100);
    const double top_share =
        std::accumulate(saved_energy.begin(),
                        saved_energy.begin() + static_cast<long>(top), 0.0) /
        total_saved;
    std::cout << "top-1% items' share of all saved energy (" << params.name
              << "): " << fmt_pct(top_share)
              << "  (paper: >33% Valancius / >21% Baliga; concentration is "
                 "higher at our reduced catalogue scale)\n";
    run.metrics().set("median_item_savings_" + params.name, median_savings);
    run.metrics().set("top1pct_saved_energy_share_" + params.name, top_share);
  }
  return run.finish();
}
