// fig6_user_cct_cdf — regenerates paper Fig. 6: the CDF across all users
// of the net per-user carbon footprint after carbon credit transfer, under
// both energy parameter sets.
//
// Paper headline: ~41 % of users become carbon positive under Valancius
// and >70 % under Baliga; the rest watch niche content with swarms too
// small to earn credits.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "core/carbon_ledger.h"
#include "core/report.h"
#include "util/histogram.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("fig6", argc, argv);
  bench::banner("Fig. 6 — per-user carbon credit transfer CDF",
                "paper: ~41% carbon positive (Valancius), >70% (Baliga)");

  TraceConfig config = TraceConfig::london_month_scaled();
  config.threads = run.threads();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());
  const Trace trace = gen.generate();
  run.set_items(static_cast<double>(trace.size()), "sessions");

  SimConfig sim_config;
  sim_config.threads = run.threads();
  const Analyzer analyzer(bench::metro(), sim_config);
  const SimResult result = analyzer.simulate(trace);
  std::cout << "users simulated: " << result.users.size() << "\n";
  run.metrics().set("users_simulated", result.users.size());

  for (const auto& params : analyzer.models()) {
    const CarbonLedger ledger(result, params);
    std::cout << "\nCDF of per-user CCT (" << params.name << "):\n";
    TextTable table({"per-user CCT", "CDF"});
    for (const auto& p : thin(empirical_cdf(ledger.cct_values()), 18)) {
      table.add_row({fmt(p.x, 3), fmt(p.y, 4)});
    }
    table.print(std::cout);
    print_ledger_summary(std::cout, ledger);
  }

  const CarbonLedger valancius(result, valancius_params());
  const CarbonLedger baliga(result, baliga_params());
  std::cout << "\nheadline: carbon-free users — Valancius "
            << fmt_pct(valancius.fraction_carbon_free()) << " (paper ~41%), "
            << "Baliga " << fmt_pct(baliga.fraction_carbon_free())
            << " (paper >70%)\n";
  run.metrics().set("carbon_free_users_Valancius",
                    valancius.fraction_carbon_free());
  run.metrics().set("carbon_free_users_Baliga",
                    baliga.fraction_carbon_free());
  run.metrics().set("median_cct_Valancius", valancius.median_cct());
  run.metrics().set("median_cct_Baliga", baliga.median_cct());
  return run.finish();
}
