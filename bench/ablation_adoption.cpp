// ablation_adoption — the incentive fixed point (ext/adoption.h): what
// participation does the carbon credit transfer actually buy, per
// popularity tier and energy model? Connects the paper's Akamai
// observation (~30 % baseline participation) with its proposed incentive.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "ext/adoption.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("ablation_adoption", argc, argv);
  bench::banner("Ablation (extension) — incentive-driven participation",
                "thresholds uniform over [-0.5, 0.5]; seeded at the ~30% "
                "participation Akamai reports without incentives");

  TextTable table({"model", "capacity tier", "fixed-point participation",
                   "participant CCT", "offload G", "system savings S"});
  for (const auto& params : standard_params()) {
    const AdoptionModel model(
        SavingsModel(params, bench::metro().isp(0)));
    for (const auto& [label, capacity] :
         {std::pair{"popular (c=50)", 50.0},
          std::pair{"medium (c=5)", 5.0},
          std::pair{"unpopular (c=0.5)", 0.5}}) {
      AdoptionConfig config;
      config.swarm_capacity = capacity;
      config.uniform_thresholds(2000, -0.5, 0.5);
      const auto result = model.solve(config);
      table.add_row({params.name, label, fmt_pct(result.participation),
                     fmt(result.cct, 3), fmt_pct(result.offload),
                     fmt_pct(result.savings)});
      if (capacity == 50.0) {
        run.metrics().set("popular_participation_" + params.name,
                          result.participation);
        run.metrics().set("popular_savings_" + params.name, result.savings);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: credits sustain high participation exactly where "
               "swarms are big enough to mint them — the same head/tail "
               "split as every other result; Baliga's larger server saving "
               "funds noticeably more participation than Valancius'.\n";
  return run.finish();
}
