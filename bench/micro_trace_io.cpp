// micro_trace_io — trace load/store throughput: CSV (iostream parsing)
// vs the binary columnar `.cltrace` format (mmap, no parsing).
//
// This is the bench behind the ROADMAP "Trace mmap I/O" item: after PR 2
// parallelized the simulator, *loading* a month-scale trace dominated
// end-to-end wall time. The binary format's acceptance bar is a >= 10x
// session-load speedup over CSV on a >= 1M-session trace.
//
// Flags beyond the standard --json/--threads:
//   --sessions N   trace size (default 1,000,000)
//   --reps R       timed repetitions per reader; best rep wins (default 3)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <random>
#include <string>

#include "bench_common.h"
#include "bench_json.h"
#include "trace/trace_binary.h"
#include "trace/trace_io.h"
#include "trace/trace_mmap.h"
#include "util/rng.h"

namespace {

using namespace cl;

/// A month-shaped trace built directly (not via TraceGenerator — this
/// bench times I/O, not generation): ascending fractional start times,
/// skewed content popularity, full-range ids. Deterministic in the seed.
Trace make_io_trace(std::size_t sessions) {
  Rng rng(20130901);
  Trace trace;
  trace.span = Seconds::from_days(30);
  trace.sessions.reserve(sessions);
  const double mean_gap = trace.span.value() / (static_cast<double>(sessions) + 1);
  double start = 0;
  double max_end = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    start += rng.exponential(1.0 / mean_gap);
    SessionRecord s;
    s.user = static_cast<std::uint32_t>(rng.uniform_index(3300000));
    s.household = s.user / 2;
    // Zipf-ish: squaring a uniform skews toward the popular head.
    const double u = rng.uniform();
    s.content = static_cast<std::uint32_t>(u * u * 2000);
    s.isp = static_cast<std::uint32_t>(rng.uniform_index(5));
    s.exp = static_cast<std::uint32_t>(rng.uniform_index(30));
    s.bitrate = static_cast<BitrateClass>(rng.uniform_index(kBitrateClasses));
    s.start = start;
    s.duration = rng.uniform(60.0, 5400.0);
    max_end = std::max(max_end, s.end());
    trace.sessions.push_back(s);
  }
  // Grow the span over the random walk's overhang (validate() requires
  // every session to end inside it).
  if (max_end > trace.span.value()) trace.span = Seconds{max_end};
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cl;
  std::int64_t sessions = 1000000;
  std::int64_t reps = 3;
  bench::Runner run("micro_trace_io", argc, argv, [&](const Args& args) {
    sessions = args.get_int("sessions", sessions);
    reps = args.get_int("reps", reps);
    if (sessions < 0) throw ParseError("--sessions must be >= 0");
    if (reps < 1) throw ParseError("--reps must be >= 1");
  });
  bench::banner("micro — trace I/O throughput (CSV vs binary .cltrace)",
                "acceptance bar: >= 10x session-load throughput for the "
                "mmap binary reader on a >= 1M-session trace");

  const Trace trace = make_io_trace(static_cast<std::size_t>(sessions));
  run.set_items(static_cast<double>(trace.size()), "sessions");
  std::cout << "trace: " << trace.size() << " sessions, "
            << trace.span.value() / 86400.0 << " days, threads "
            << run.resolved_threads() << ", best of " << reps << " reps\n\n";

  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path();
  // Portable unique suffix (no <unistd.h>): concurrent runs must not
  // clobber each other's temp files.
  const std::string tag = std::to_string(std::random_device{}());
  const std::string csv_path =
      (dir / ("cl_micro_trace_io_" + tag + ".csv")).string();
  const std::string bin_path =
      (dir / ("cl_micro_trace_io_" + tag + ".cltrace")).string();

  const auto w0 = std::chrono::steady_clock::now();
  write_trace_file(csv_path, trace);
  const double csv_write = seconds_since(w0);
  const auto w1 = std::chrono::steady_clock::now();
  write_trace_binary_file(bin_path, trace);
  const double bin_write = seconds_since(w1);

  const double csv_bytes = static_cast<double>(fs::file_size(csv_path));
  const double bin_bytes = static_cast<double>(fs::file_size(bin_path));

  double csv_read = -1;
  double bin_read = -1;
  std::size_t csv_loaded = 0;
  std::size_t bin_loaded = 0;
  for (std::int64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const Trace loaded = read_trace_file(csv_path);
    const double wall = seconds_since(t0);
    csv_loaded = loaded.size();
    if (csv_read < 0 || wall < csv_read) csv_read = wall;
  }
  for (std::int64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const Trace loaded = read_trace_binary_file(bin_path, run.threads());
    const double wall = seconds_since(t0);
    bin_loaded = loaded.size();
    if (bin_read < 0 || wall < bin_read) bin_read = wall;
  }
  fs::remove(csv_path);
  fs::remove(bin_path);
  if (csv_loaded != trace.size() || bin_loaded != trace.size()) {
    std::cerr << "error: round-trip lost sessions (csv " << csv_loaded
              << ", binary " << bin_loaded << ", expected " << trace.size()
              << ")\n";
    return 1;
  }

  const double n = static_cast<double>(trace.size());
  const double csv_rate = csv_read > 0 ? n / csv_read : 0;
  const double bin_rate = bin_read > 0 ? n / bin_read : 0;
  const double speedup = csv_rate > 0 ? bin_rate / csv_rate : 0;

  std::cout << "  format   size/session   write s   load s   sessions/s\n";
  std::printf("  csv      %8.1f B   %9.3f  %8.3f   %11.0f\n",
              csv_bytes / n, csv_write, csv_read, csv_rate);
  std::printf("  binary   %8.1f B   %9.3f  %8.3f   %11.0f\n",
              bin_bytes / n, bin_write, bin_read, bin_rate);
  std::printf("\n  load speedup (binary/csv): %.1fx\n", speedup);
  if (speedup < 10.0 && trace.size() >= 1000000) {
    std::cout << "  WARNING: below the 10x acceptance bar\n";
  }

  run.metrics().set("csv_load_sessions_per_second", csv_rate);
  run.metrics().set("binary_load_sessions_per_second", bin_rate);
  run.metrics().set("binary_over_csv_load_speedup", speedup);
  run.metrics().set("csv_write_seconds", csv_write);
  run.metrics().set("binary_write_seconds", bin_write);
  run.metrics().set("csv_bytes_per_session", csv_bytes / n);
  run.metrics().set("binary_bytes_per_session", bin_bytes / n);
  return run.finish();
}
