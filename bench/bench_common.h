// bench_common.h — shared helpers for the benchmark harness binaries.
#pragma once

#include <iostream>
#include <string>

#include "topology/metro_registry.h"
#include "topology/placement.h"
#include "trace/synthetic.h"

namespace cl::bench {

/// Prints the standard banner: which paper artefact this binary
/// regenerates, at which scale and seed (for reproducibility).
inline void banner(const std::string& artefact, const std::string& note) {
  std::cout << "\n================================================================\n"
            << "Consume Local (ICDCS 2018) reproduction — " << artefact << "\n"
            << note << "\n"
            << "================================================================\n";
}

/// The London metro the paper benches reproduce (fig_cross_metro sweeps
/// every registry preset instead).
inline const Metro& metro() {
  return MetroRegistry::instance().get(kDefaultMetroName);
}

inline void print_trace_scale(const TraceConfig& config) {
  std::cout << "workload: synthetic scaled London month (seed "
            << config.seed << ", " << config.days << " days, "
            << config.users << " users; paper: 3.3M users / 23.5M sessions"
            << " — see DESIGN.md for the scaling substitution)\n\n";
}

}  // namespace cl::bench
