// fig_carbon_routing — the carbon-aware scheduling experiment: replay
// the same scaled month unscheduled and scheduled (trough-seeking
// preload + cross-metro green routing, src/carbon/schedule.h) across
// every metro preset × intensity preset, and price both runs with
// dual-grid accounting.
//
// This is the GreenStream-style headline ("8.2 % emission cut under a
// <30 ms added-delay budget") reproduced on this simulator: the
// scheduler shifts preloadable sessions into the grid's daily trough
// (raising swarm synchrony and offload at the cleanest hours) and
// serves each hour from the cleanest metro reachable within the
// latency bound, while the dual-grid formula keeps the user-side wire
// honest about energy burned on both ends.
//
// Reading the table: `flat` rows are the no-op anchor — no intensity
// signal, scheduler inert, reduction exactly 0 (the same
// backward-compatibility contract pinned in tests). Every non-flat row
// must show a positive reduction; how much depends on how deep the
// user grid's trough is and how much cleaner the neighbouring metro's
// grid runs (london routes into the CAISO solar trough; us_sparse
// routes into the nordic hydro grid; fiber_dense already sits on the
// cleanest grid and gains from preload alone).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "carbon/intensity_curve.h"
#include "carbon/schedule.h"
#include "sim/hybrid_sim.h"
#include "topology/metro_registry.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  double days = 30;
  bench::Runner run("fig_carbon_routing", argc, argv, [&](const Args& args) {
    days = args.get_double("days", days);
  });
  bench::banner(
      "carbon-aware scheduling — unscheduled vs scheduled gCO2 per "
      "metro x grid",
      "trough-seeking preload + green routing under a 30 ms latency "
      "bound, priced by dual-grid accounting; flat rows are the no-op "
      "anchor");

  const MetroRegistry& metros = MetroRegistry::instance();
  const IntensityRegistry& intensities = IntensityRegistry::instance();
  const std::vector<std::string> metro_names = metros.names();
  double total_sessions = 0;
  double reduction_sum = 0;
  std::int64_t reduction_cells = 0;

  TextTable table({"metro", "intensity", "model", "unsched kgCO2",
                   "sched kgCO2", "reduction", "hours routed", "mean +ms"});

  for (std::size_t home = 0; home < metro_names.size(); ++home) {
    const Metro& metro = metros.get(metro_names[home]);

    TraceConfig config = TraceConfig::london_month_scaled(days);
    config.metro = metro_names[home];
    config.threads = run.threads();
    const Trace trace = TraceGenerator(config, metro).generate();
    total_sessions += static_cast<double>(trace.size());

    SimConfig sim_config;
    sim_config.threads = run.threads();
    sim_config.collect_swarms = false;
    sim_config.collect_per_user = false;
    sim_config.collect_hourly = true;
    HybridSimulator simulator(metro, sim_config);
    const SimResult unscheduled = simulator.run(trace);

    for (const auto& intensity_preset : intensities.presets()) {
      const IntensityCurve& curve = intensities.get(intensity_preset.name);
      const CarbonScheduler scheduler(curve);

      // The scheduled replay: preload into the curve's trough, then
      // re-simulate. Inert (flat) schedulers reuse the unscheduled run
      // — the transform is the identity, so re-running would only cost
      // time to produce bit-identical numbers.
      SimResult preloaded;
      const SimResult* scheduled = &unscheduled;
      if (!scheduler.inert()) {
        preloaded =
            simulator.run(scheduler.schedule_preload(trace, config.seed));
        scheduled = &preloaded;
      }

      std::vector<const IntensityCurve*> serving;
      for (std::size_t m = 0; m < metro_names.size(); ++m) {
        serving.push_back(m == home
                              ? &curve
                              : &intensities.default_for_metro(metro_names[m]));
      }
      const RoutingPlan plan =
          scheduler.plan_routes(serving, home, scheduled->hourly.size());

      const std::string cell =
          metro_names[home] + "_" + intensity_preset.name;
      run.metrics().set(cell + "_hours_routed",
                        static_cast<std::int64_t>(plan.hours_routed_away()));
      run.metrics().set(cell + "_mean_added_latency_ms",
                        plan.mean_added_latency_ms());
      run.metrics().set(cell + "_max_added_latency_ms",
                        plan.max_added_latency_ms());

      for (const auto& params : standard_params()) {
        const EnergyAccountant energy{CostFunctions(params)};
        const ScheduleOutcome outcome =
            scheduler.assess(unscheduled.hourly, scheduled->hourly, energy,
                             plan);

        table.add_row({metro_names[home], intensity_preset.name, params.name,
                       fmt(outcome.unscheduled_g / 1000.0, 1),
                       fmt(outcome.scheduled_g / 1000.0, 1),
                       fmt_pct(outcome.reduction),
                       fmt(static_cast<double>(plan.hours_routed_away()), 0),
                       fmt(plan.mean_added_latency_ms(), 1)});

        const std::string key = cell + "_" + params.name;
        run.metrics().set(key + "_unscheduled_kg",
                          outcome.unscheduled_g / 1000.0);
        run.metrics().set(key + "_scheduled_kg", outcome.scheduled_g / 1000.0);
        run.metrics().set(key + "_reduction", outcome.reduction);
        if (!scheduler.inert()) {
          reduction_sum += outcome.reduction;
          ++reduction_cells;
        }
      }
    }
  }
  run.set_items(total_sessions, "sessions");
  run.metrics().set("headline_mean_reduction",
                    reduction_cells > 0
                        ? reduction_sum / static_cast<double>(reduction_cells)
                        : 0.0);

  std::cout << "\nunscheduled vs scheduled dual-grid gCO2 over " << days
            << " days (preload adoption 50%, 2 h trough window, 25 ms/hop, "
               "30 ms budget):\n";
  table.print(std::cout);
  std::cout << "\nflat rows stay at exactly 0 (inert scheduler); non-flat "
               "rows cut grams two ways — the preload moves swarms into the "
               "trough hours, and routing serves hours from a cleaner "
               "neighbouring grid when one is within the latency budget.\n";
  return run.finish();
}
