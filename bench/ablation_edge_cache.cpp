// ablation_edge_cache — the paper's caching future-work direction
// (ref [31] Wi-Stitch): exchange-point LRU caches in front of the hybrid
// CDN, swept over cache size, with and without P2P for the misses.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "ext/edge_cache.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("ablation_edge_cache", argc, argv);
  bench::banner("Ablation (extension) — exchange-point edge caches",
                "ψcache = PUE·(γs + γexp/2) + l·γm per bit (documented "
                "substitution, see ext/edge_cache.h)");

  TraceConfig config = TraceConfig::london_month_scaled(/*days=*/10);
  config.threads = run.threads();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());
  const Trace trace = gen.generate();
  run.set_items(static_cast<double>(trace.size()) * 9, "sessions");

  // Reference: plain hybrid CDN without caches.
  SimConfig sim_config;
  sim_config.threads = run.threads();
  sim_config.collect_hourly = false;
  sim_config.collect_per_user = false;
  sim_config.collect_swarms = false;
  const auto plain = HybridSimulator(bench::metro(), sim_config).run(trace);
  std::cout << "reference hybrid CDN (no cache): S = ";
  for (const auto& params : standard_params()) {
    const EnergyAccountant accountant{CostFunctions(params)};
    std::cout << params.name << " " << fmt_pct(accountant.savings(plain.total))
              << "  ";
  }
  std::cout << "\n\n";

  TextTable table({"cache items/ExP", "misses use P2P", "hit rate",
                   "S (Valancius)", "S (Baliga)"});
  for (std::size_t capacity : {2u, 10u, 50u, 200u}) {
    for (bool p2p : {false, true}) {
      EdgeCacheConfig cache_config;
      cache_config.capacity_per_exp = capacity;
      cache_config.misses_use_p2p = p2p;
      EdgeCacheSimulator sim(bench::metro(), sim_config, cache_config);
      const auto outcome = sim.run(trace);
      std::vector<std::string> row{std::to_string(capacity),
                                   p2p ? "yes" : "no",
                                   fmt_pct(outcome.hit_rate())};
      for (const auto& params : standard_params()) {
        row.push_back(fmt_pct(EdgeCacheSimulator::savings(outcome, params)));
      }
      table.add_row(row);
      if (capacity == 50u) {
        const std::string key =
            std::string("cache50_") + (p2p ? "with" : "no") + "_p2p";
        run.metrics().set(key + "_hit_rate", outcome.hit_rate());
        for (const auto& params : standard_params()) {
          run.metrics().set(key + "_savings_" + params.name,
                            EdgeCacheSimulator::savings(outcome, params));
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: caches alone recover part of the hybrid "
               "savings without any user upload; combined with P2P they "
               "push beyond the plain hybrid because hits bypass the "
               "double-modem cost.\n";
  return run.finish();
}
