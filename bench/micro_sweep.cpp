// micro_sweep — simulator sweep throughput: the historical row path
// (SessionRecord loads + virtual matcher dispatch, run_rows) vs the
// columnar SoA path (mmap'd TraceView columns + gathered scratch + the
// flat existence matcher, run).
//
// This is the bench behind the ROADMAP "zero-materialization sweep"
// and "SIMD-explicit kernels" items: the acceptance bar is a >= 5x
// single-thread sessions/s speedup for the SoA + SIMD path on a
// >= 1M-session trace (CI pins it via compare_bench_json.py --min).
// Both paths must produce bit-identical SimResult totals — the bench
// fails hard on divergence.
//
// Flags beyond the standard --json/--threads:
//   --sessions N   trace size (default 1,000,000)
//   --reps R       timed repetitions per path; best rep wins (default 3)
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <random>
#include <string>

#include "bench_common.h"
#include "bench_json.h"
#include "sim/hybrid_sim.h"
#include "topology/metro_registry.h"
#include "trace/swarm_index.h"
#include "trace/trace_binary.h"
#include "trace/trace_view.h"
#include "util/rng.h"
#include "util/simd.h"

namespace {

using namespace cl;

/// A dense two-day workload with metro-valid ids (not TraceGenerator —
/// this bench times the sweep, not generation): ascending fractional
/// start times, Zipf-ish content skew, ISP/ExP ids drawn from the
/// metro's real trees. Two days rather than a month so swarm concurrency
/// matches the paper-scale workload's — a 1M-session month is so sparse
/// that per-event matching (the thing the SoA path accelerates) barely
/// registers. Deterministic in the seed.
Trace make_sweep_trace(std::size_t sessions, const Metro& metro) {
  Rng rng(20180702);
  Trace trace;
  trace.span = Seconds::from_days(2);
  trace.metro_name = metro.name();
  trace.sessions.reserve(sessions);
  const double mean_gap =
      trace.span.value() / (static_cast<double>(sessions) + 1);
  double start = 0;
  double max_end = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    start += rng.exponential(1.0 / mean_gap);
    SessionRecord s;
    s.user = static_cast<std::uint32_t>(rng.uniform_index(3300000));
    s.household = s.user / 2;
    const double u = rng.uniform();
    s.content = static_cast<std::uint32_t>(u * u * 2000);
    s.isp = static_cast<std::uint32_t>(rng.uniform_index(metro.isp_count()));
    s.exp = static_cast<std::uint32_t>(
        rng.uniform_index(metro.isp(s.isp).exchange_points()));
    s.bitrate = static_cast<BitrateClass>(rng.uniform_index(kBitrateClasses));
    s.start = start;
    s.duration = rng.uniform(60.0, 5400.0);
    max_end = std::max(max_end, s.end());
    trace.sessions.push_back(s);
  }
  if (max_end > trace.span.value()) trace.span = Seconds{max_end};
  trace.swarm_index = build_swarm_index(trace);
  return trace;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// FNV-1a over the bit patterns of the result's headline doubles — equal
/// digests mean the two paths agreed bit-for-bit on every total.
std::uint64_t result_digest(const SimResult& result) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](double x) {
    h ^= std::bit_cast<std::uint64_t>(x);
    h *= 1099511628211ULL;
  };
  mix(result.total.server.value());
  for (const Bits& level : result.total.peer) mix(level.value());
  mix(result.total.cross_isp.value());
  mix(result.span.value());
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cl;
  std::int64_t sessions = 1000000;
  std::int64_t reps = 3;
  bench::Runner run("micro_sweep", argc, argv, [&](const Args& args) {
    sessions = args.get_int("sessions", sessions);
    reps = args.get_int("reps", reps);
    if (sessions < 0) throw ParseError("--sessions must be >= 0");
    if (reps < 1) throw ParseError("--reps must be >= 1");
  });
  bench::banner("micro — simulator sweep throughput (row vs SoA columns)",
                "acceptance bar: >= 5x single-thread sessions/s for the "
                "SoA + SIMD sweep on a >= 1M-session trace");

  const Metro& metro = MetroRegistry::instance().get(kDefaultMetroName);
  const Trace trace =
      make_sweep_trace(static_cast<std::size_t>(sessions), metro);
  run.set_items(static_cast<double>(trace.size()), "sessions");
  std::cout << "trace: " << trace.size() << " sessions, "
            << trace.span.value() / 86400.0 << " days, "
            << trace.swarm_index.groups.size() << " swarms, metro "
            << metro.name() << ", threads " << run.resolved_threads()
            << ", best of " << reps << " reps\n\n";

  // The SoA path sweeps the mmap'd columns of a real `.cltrace` file —
  // the deployment shape — while the row path replays the in-memory
  // row-structured Trace. Load/mmap time is *excluded* from both (that
  // is micro_trace_io's subject); only the simulate call is timed.
  namespace fs = std::filesystem;
  const std::string bin_path =
      (fs::temp_directory_path() /
       ("cl_micro_sweep_" + std::to_string(std::random_device{}()) +
        ".cltrace"))
          .string();
  write_trace_binary_file(bin_path, trace);
  const TraceView view = TraceView::open_binary(bin_path, run.threads());

  // Pure sweep: the metric-collection toggles (per-user maps, hourly
  // grids, per-swarm rows) cost the same on both paths and would only
  // dilute the row-vs-SoA contrast this bench exists to measure.
  SimConfig config;
  config.threads = run.threads();
  config.collect_swarms = false;
  config.collect_per_user = false;
  config.collect_hourly = false;
  const HybridSimulator sim(metro, config);

  double row_best = -1;
  double soa_best = -1;
  std::uint64_t row_digest = 0;
  std::uint64_t soa_digest = 0;
  for (std::int64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult result = sim.run_rows(trace);
    const double wall = seconds_since(t0);
    row_digest = result_digest(result);
    if (row_best < 0 || wall < row_best) row_best = wall;
  }
  for (std::int64_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const SimResult result = sim.run(view);
    const double wall = seconds_since(t0);
    soa_digest = result_digest(result);
    if (soa_best < 0 || wall < soa_best) soa_best = wall;
  }
  // One extra instrumented rep for the per-kernel split (the timing sink
  // adds clock reads to the sweep hot path, so it stays out of the timed
  // reps above; regressions still localize to a kernel from this rep).
  SimPhaseTiming phases;
  (void)sim.run(view, &phases);
  fs::remove(bin_path);

  if (row_digest != soa_digest) {
    std::cerr << "error: row and SoA paths diverged (digest "
              << row_digest << " vs " << soa_digest
              << ") — the SoA sweep is supposed to be bit-identical\n";
    return 1;
  }

  const double n = static_cast<double>(trace.size());
  const double row_rate = row_best > 0 ? n / row_best : 0;
  const double soa_rate = soa_best > 0 ? n / soa_best : 0;
  const double speedup = row_rate > 0 ? soa_rate / row_rate : 0;

  std::cout << "  path          simulate s   sessions/s\n";
  std::printf("  rows (AoS)    %9.3f   %11.0f\n", row_best, row_rate);
  std::printf("  columns (SoA) %9.3f   %11.0f\n", soa_best, soa_rate);
  std::printf("\n  sweep speedup (SoA/rows): %.1fx  (results bit-identical)\n",
              speedup);
  std::printf(
      "\n  SoA per-kernel split (instrumented rep, simd backend: %s)\n"
      "    gather1  %7.3f s   gather2  %7.3f s\n"
      "    events   %7.3f s   allocate %7.3f s\n",
      cl::simd::kBackendName, phases.sweep_gather1_seconds,
      phases.sweep_gather2_seconds, phases.sweep_events_seconds,
      phases.sweep_allocate_seconds);
  if (speedup < 5.0 && trace.size() >= 1000000 && run.resolved_threads() == 1) {
    std::cout << "  WARNING: below the 5x acceptance bar (SoA + SIMD)\n";
  }

  run.metrics().set("row_sessions_per_second", row_rate);
  run.metrics().set("soa_sessions_per_second", soa_rate);
  run.metrics().set("soa_over_row_speedup", speedup);
  run.metrics().set("row_simulate_seconds", row_best);
  run.metrics().set("soa_simulate_seconds", soa_best);
  run.metrics().set("soa_gather1_seconds", phases.sweep_gather1_seconds);
  run.metrics().set("soa_gather2_seconds", phases.sweep_gather2_seconds);
  run.metrics().set("soa_events_seconds", phases.sweep_events_seconds);
  run.metrics().set("soa_allocate_seconds", phases.sweep_allocate_seconds);
  return run.finish();
}
