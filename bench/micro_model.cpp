// micro_model — google-benchmark microbenchmarks of the hot paths: the
// closed-form model evaluation, the workload generator and the simulator
// sweep (throughput in sessions/second).
#include <benchmark/benchmark.h>

#include "core/analyzer.h"
#include "model/localisation.h"
#include "model/offload.h"
#include "model/savings.h"
#include "topology/placement.h"
#include "trace/synthetic.h"
#include "util/rng.h"

namespace {

using namespace cl;

const Metro& metro() {
  static const Metro m = Metro::london_top5();
  return m;
}

void BM_OffloadFraction(benchmark::State& state) {
  double c = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(offload_fraction(c, 1.0));
    c = c < 1e4 ? c * 1.1 : 0.01;
  }
}
BENCHMARK(BM_OffloadFraction);

void BM_SavingsEquation12(benchmark::State& state) {
  const SavingsModel model(valancius_params(), metro().isp(0));
  double c = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.savings(c, 1.0));
    c = c < 1e4 ? c * 1.1 : 0.01;
  }
}
BENCHMARK(BM_SavingsEquation12);

void BM_ExpectedWeightedGammaClosedForm(benchmark::State& state) {
  const auto params = baliga_params();
  const auto loc = metro().isp(0).localisation();
  double c = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(expected_weighted_gamma(params, loc, c));
    c = c < 1e4 ? c * 1.1 : 0.01;
  }
}
BENCHMARK(BM_ExpectedWeightedGammaClosedForm);

void BM_ExpectedWeightedGammaSeries(benchmark::State& state) {
  const auto params = baliga_params();
  const auto loc = metro().isp(0).localisation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expected_weighted_gamma_series(params, loc, 50.0));
  }
}
BENCHMARK(BM_ExpectedWeightedGammaSeries);

void BM_RngPoisson(benchmark::State& state) {
  Rng rng(1);
  const double mean = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.poisson(mean));
  }
}
BENCHMARK(BM_RngPoisson)->Arg(3)->Arg(300);

void BM_TraceGeneration(benchmark::State& state) {
  TraceConfig config;
  config.days = 2;
  config.users = 5000;
  config.exemplar_views = {20000};
  config.catalogue_tail = 200;
  config.tail_views = 10000;
  for (auto _ : state) {
    TraceGenerator gen(config, metro());
    const Trace trace = gen.generate();
    benchmark::DoNotOptimize(trace.size());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(trace.size()));
  }
}
BENCHMARK(BM_TraceGeneration)->Unit(benchmark::kMillisecond);

void BM_HybridSimulatorSweep(benchmark::State& state) {
  TraceConfig config;
  config.days = 2;
  config.users = 5000;
  config.exemplar_views = {20000};
  config.catalogue_tail = 200;
  config.tail_views = 10000;
  TraceGenerator gen(config, metro());
  const Trace trace = gen.generate();
  SimConfig sim_config;
  sim_config.collect_hourly = false;
  sim_config.collect_per_user = false;
  sim_config.collect_swarms = false;
  const HybridSimulator sim(metro(), sim_config);
  for (auto _ : state) {
    const auto result = sim.run(trace);
    benchmark::DoNotOptimize(result.total.total().value());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(trace.size()));
  }
}
BENCHMARK(BM_HybridSimulatorSweep)->Unit(benchmark::kMillisecond);

void BM_HybridSimulatorFullMetrics(benchmark::State& state) {
  TraceConfig config;
  config.days = 2;
  config.users = 5000;
  config.exemplar_views = {20000};
  config.catalogue_tail = 200;
  config.tail_views = 10000;
  TraceGenerator gen(config, metro());
  const Trace trace = gen.generate();
  const HybridSimulator sim(metro(), SimConfig{});
  for (auto _ : state) {
    const auto result = sim.run(trace);
    benchmark::DoNotOptimize(result.users.size());
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<std::int64_t>(trace.size()));
  }
}
BENCHMARK(BM_HybridSimulatorFullMetrics)->Unit(benchmark::kMillisecond);

}  // namespace
