// table1_dataset — regenerates paper Table I: "Description of the dataset".
//
// The paper reports, for Sep 2013 and Jul 2014 (London users of BBC
// iPlayer): number of users, number of IP addresses, number of sessions.
// We generate two synthetic months with different seeds and report the
// same rows at our (documented) scale-down.
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "core/report.h"
#include "trace/trace_stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("table1", argc, argv);
  bench::banner("Table I — dataset description",
                "paper: Sep 2013 = 3.3M users / 1.5M IPs / 23.5M sessions; "
                "Jul 2014 = 3.6M / 1.6M / 24.2M (scaled here ~1:55)");

  TextTable table({"", "Sep 2013 (synthetic)", "Jul 2014 (synthetic)"});
  std::vector<TraceStats> stats;
  std::vector<Seconds> spans;
  for (const auto& [label, seed, scale] :
       {std::tuple{"Sep 2013", std::uint64_t{20130901}, 1.00},
        std::tuple{"Jul 2014", std::uint64_t{20140701}, 1.06}}) {
    TraceConfig config = TraceConfig::london_month_scaled();
    config.seed = seed;
    // Jul 2014 is ~6-9 % bigger in every Table I row.
    config.users = static_cast<std::uint32_t>(config.users * scale);
    config.threads = run.threads();
    for (auto& v : config.exemplar_views) v *= scale;
    config.tail_views *= scale;
    TraceGenerator gen(config, bench::metro());
    const Trace trace = gen.generate();
    stats.push_back(compute_stats(trace));
    spans.push_back(trace.span);
    if (seed == 20130901) bench::print_trace_scale(config);
  }

  table.add_row({"Number of Users", fmt_count(stats[0].distinct_users),
                 fmt_count(stats[1].distinct_users)});
  table.add_row({"Number of IP addresses",
                 fmt_count(stats[0].distinct_households),
                 fmt_count(stats[1].distinct_households)});
  table.add_row({"Number of Sessions", fmt_count(stats[0].sessions),
                 fmt_count(stats[1].sessions)});
  table.print(std::cout);

  std::cout << "\nDetailed month statistics (Sep 2013 synthetic):\n";
  print_trace_stats(std::cout, stats[0], spans[0]);

  const double ip_ratio = static_cast<double>(stats[0].distinct_households) /
                          static_cast<double>(stats[0].distinct_users);
  const double sessions_per_user =
      static_cast<double>(stats[0].sessions) /
      static_cast<double>(stats[0].distinct_users);
  std::cout << "\npaper-vs-ours (ratios that must hold):\n"
            << "  IPs/users paper 1.5/3.3 = 0.45 ; ours = "
            << fmt(ip_ratio, 2)
            << "\n  sessions/user paper 23.5/3.3 = 7.1 ; ours = "
            << fmt(sessions_per_user, 1) << "\n";
  run.metrics().set("sep2013_users", stats[0].distinct_users);
  run.metrics().set("sep2013_ips", stats[0].distinct_households);
  run.metrics().set("sep2013_sessions", stats[0].sessions);
  run.metrics().set("jul2014_users", stats[1].distinct_users);
  run.metrics().set("jul2014_ips", stats[1].distinct_households);
  run.metrics().set("jul2014_sessions", stats[1].sessions);
  run.metrics().set("ips_per_user", ip_ratio);
  run.metrics().set("sessions_per_user", sessions_per_user);
  run.set_items(static_cast<double>(stats[0].sessions + stats[1].sessions),
                "sessions");
  return run.finish();
}
