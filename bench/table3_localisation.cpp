// table3_localisation — regenerates paper Table III: the probability of
// localising peers within each layer of the ISP metropolitan network
// (exchange point / point of presence / core router).
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("table3", argc, argv);
  bench::banner("Table III — localisation probabilities",
                "paper (ISP-1): ExP 345 nodes -> 0.29%; PoP 9 -> 11.11%; "
                "core 1 -> 100%");

  TextTable table({"Layer", "Count", "Localisation Probability"});
  const auto& topo = bench::metro().isp(0);
  const auto loc = topo.localisation();
  table.add_row({"Exchange Point", std::to_string(topo.exchange_points()),
                 fmt_pct(loc.exp, 2)});
  table.add_row({"Point of Presence", std::to_string(topo.pops()),
                 fmt_pct(loc.pop, 2)});
  table.add_row({"Core Router", std::to_string(topo.cores()),
                 fmt_pct(loc.core, 2)});
  table.print(std::cout);

  std::cout << "\nShare-scaled trees of the remaining top-5 ISPs "
               "(our substitution for unpublished competitor topologies):\n";
  TextTable isps({"ISP", "market share", "ExPs", "PoPs", "p_exp", "p_pop"});
  for (std::size_t i = 0; i < bench::metro().isp_count(); ++i) {
    const auto& t = bench::metro().isp(i);
    const auto l = t.localisation();
    isps.add_row({t.name(), fmt_pct(bench::metro().share(i)),
                  std::to_string(t.exchange_points()),
                  std::to_string(t.pops()), fmt_pct(l.exp, 2),
                  fmt_pct(l.pop, 2)});
  }
  isps.print(std::cout);
  run.metrics().set("isp1_exchange_points",
                    static_cast<std::int64_t>(topo.exchange_points()));
  run.metrics().set("isp1_pops", static_cast<std::int64_t>(topo.pops()));
  run.metrics().set("isp1_p_exp", loc.exp);
  run.metrics().set("isp1_p_pop", loc.pop);
  run.metrics().set("isp1_p_core", loc.core);
  return run.finish();
}
