// fig_flash_crowd — the flash-crowd scenario experiment: a live-event
// spike (arrival burst, churn with rejoin, mid-event bitrate shift)
// simulated with the overload model on, emitting the CCT and savings
// trajectories through the spike — including the overload phase where
// swarm demand exceeds the warm members' upload capacity and the excess
// spills back to the CDN.
//
// The bench also pins the overload accounting's determinism contract:
// the run repeats at --threads 1/2/7/<requested> and every traffic lane,
// the total spill, and the per-hour spill grid must be bit-identical
// (metric `overload_threads_identical` = 1, gated in CI). A companion
// overload-off run checks conservation: the spill only *moves* bits from
// the peer lanes to the server lane, so total delivered volume matches
// to FP rounding (`total_bits_conserved` = 1).
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "ext/live.h"
#include "model/carbon_credit.h"
#include "sim/hybrid_sim.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  std::uint32_t viewers = 20000;
  std::string preset = "spike";
  double days = 1.0;
  double start_s = 7200.0;
  std::uint64_t seed = 42;
  bench::Runner run("fig_flash_crowd", argc, argv, [&](const Args& args) {
    viewers = static_cast<std::uint32_t>(
        args.get_int("viewers", static_cast<std::int64_t>(viewers)));
    preset = args.get_or("preset", preset);
    days = args.get_double("days", days);
    start_s = args.get_double("start", start_s);
    seed = static_cast<std::uint64_t>(
        args.get_int("seed", static_cast<std::int64_t>(seed)));
  });
  bench::banner(
      "flash crowd — savings/CCT trajectory through a live-event spike",
      "overload model on: peer demand above warm upload capacity spills "
      "back to the CDN, bit-identically at every thread count");

  const Metro& metro = bench::metro();
  const FlashCrowdConfig config =
      flash_crowd_preset(preset, viewers, start_s, days);
  const Trace trace = generate_flash_crowd(metro, config, seed);
  run.set_items(static_cast<double>(trace.size()), "sessions");
  std::cout << "scenario: preset '" << preset << "', " << viewers
            << " expected viewers, event at " << start_s << " s, "
            << trace.size() << " session segments (seed " << seed << ")\n";

  SimConfig sim_config;
  sim_config.collect_swarms = false;
  sim_config.collect_per_user = false;
  sim_config.collect_hourly = true;
  sim_config.overload = true;

  // The determinism contract: every thread count yields the same bits.
  const std::vector<unsigned> thread_counts{1, 2, 7, run.threads()};
  std::vector<SimResult> results;
  for (unsigned threads : thread_counts) {
    sim_config.threads = threads;
    results.push_back(HybridSimulator(metro, sim_config).run(trace));
  }
  const SimResult& result = results.front();
  bool identical = true;
  for (const SimResult& other : results) {
    identical = identical && other.total.server == result.total.server &&
                other.total.peer == result.total.peer &&
                other.total.cross_isp == result.total.cross_isp &&
                other.overload_spill == result.overload_spill &&
                other.hourly_spill == result.hourly_spill;
  }
  run.metrics().set("overload_threads_identical",
                    static_cast<std::int64_t>(identical ? 1 : 0));

  // Conservation: overload only moves bits between lanes, so total
  // delivered volume matches the uncapped run to FP rounding (the lane
  // redistribution rounds per peer, so bitwise equality is not expected).
  sim_config.overload = false;
  sim_config.threads = run.threads();
  const SimResult baseline = HybridSimulator(metro, sim_config).run(trace);
  const double conservation_rel_error =
      std::abs(result.total.total().value() - baseline.total.total().value()) /
      baseline.total.total().value();
  run.metrics().set("conservation_rel_error", conservation_rel_error);
  run.metrics().set(
      "total_bits_conserved",
      static_cast<std::int64_t>(conservation_rel_error < 1e-9 ? 1 : 0));

  const double spill_gb = result.overload_spill.value() / 8e9;
  run.metrics().set("spill_gb", spill_gb);
  run.metrics().set("offload", result.offload());
  run.metrics().set("offload_no_overload", baseline.offload());
  std::cout << "\noverload spill: " << fmt(spill_gb, 3)
            << " GB bounced to the CDN; offload " << fmt_pct(result.offload())
            << " (vs " << fmt_pct(baseline.offload())
            << " with unlimited peer upload)\n";

  // The trajectory: per-hour volume, offload, spill, savings and CCT.
  const auto models = standard_params();
  std::vector<std::string> header{"hour", "GB", "offload", "spill GB"};
  for (const auto& params : models) {
    header.push_back("S " + params.name);
    header.push_back("CCT " + params.name);
  }
  TextTable table(header);
  std::vector<double> hourly_gb, hourly_offload, hourly_spill_gb;
  std::vector<std::vector<double>> hourly_savings(models.size());
  std::vector<std::vector<double>> hourly_cct(models.size());
  for (std::size_t h = 0; h < result.hourly.size(); ++h) {
    TrafficBreakdown hour_traffic;
    for (const auto& isp_traffic : result.hourly[h]) {
      hour_traffic += isp_traffic;
    }
    if (hour_traffic.total().value() <= 0) continue;
    const double gb = hour_traffic.total().value() / 8e9;
    const double offload = hour_traffic.offload_fraction();
    const double hour_spill = h < result.hourly_spill.size()
                                  ? result.hourly_spill[h].value() / 8e9
                                  : 0.0;
    hourly_gb.push_back(gb);
    hourly_offload.push_back(offload);
    hourly_spill_gb.push_back(hour_spill);
    std::vector<std::string> row{std::to_string(h), fmt(gb, 3),
                                 fmt_pct(offload), fmt(hour_spill, 3)};
    for (std::size_t m = 0; m < models.size(); ++m) {
      const EnergyAccountant accountant{CostFunctions(models[m])};
      const double savings = accountant.savings(hour_traffic);
      const double cct = cct_from_offload(offload, models[m]);
      hourly_savings[m].push_back(savings);
      hourly_cct[m].push_back(cct);
      row.push_back(fmt_pct(savings));
      row.push_back(fmt(cct, 3));
    }
    table.add_row(std::move(row));
  }
  std::cout << "\ntrajectory through the spike (non-empty hours):\n";
  table.print(std::cout);
  std::cout << "\nthe spike hour carries nearly all traffic at high "
               "offload, and is where the spill concentrates: the crowd's "
               "newest joiners demand before they can serve.\n";

  run.metrics().set("hourly_gb", hourly_gb);
  run.metrics().set("hourly_offload", hourly_offload);
  run.metrics().set("hourly_spill_gb", hourly_spill_gb);
  for (std::size_t m = 0; m < models.size(); ++m) {
    run.metrics().set("hourly_savings_" + models[m].name, hourly_savings[m]);
    run.metrics().set("hourly_cct_" + models[m].name, hourly_cct[m]);
    const EnergyAccountant accountant{CostFunctions(models[m])};
    run.metrics().set("savings_" + models[m].name,
                      accountant.savings(result.total));
  }
  return run.finish();
}
