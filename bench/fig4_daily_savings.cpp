// fig4_daily_savings — regenerates paper Fig. 4: aggregate daily energy
// savings across ISPs over a month, data-driven simulation (sim.) vs the
// analytical model (theo.), for both energy parameter sets.
//
// The paper plots ISP-1, ISP-4 and ISP-5 and reports ~30 % (Valancius) /
// ~18 % (Baliga) average savings for the biggest ISP.
//
// Paper-scale runs: --paper-scale generates the full 3.3 M-user /
// ~23.5 M-session month in-process, and --trace PATH replays a
// pregenerated trace instead (use `cl generate --preset paper --format
// binary` once, then reload the .cltrace in seconds per run).
#include <iostream>
#include <string>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "trace/trace_format.h"
#include "trace/trace_view.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  std::string trace_path;
  bool paper_scale = false;
  bench::Runner run(
      "fig4", argc, argv,
      [&](const Args& args) {
        trace_path = args.get_or("trace", "");
        paper_scale = args.has("paper-scale");
      },
      {"paper-scale"});
  bench::banner("Fig. 4 — daily aggregate savings per ISP (sim vs theory)",
                "paper: ~30% (Valancius) / ~18% (Baliga) for the biggest "
                "ISP, stable across the month");

  // Pregenerated `.cltrace` input is consumed zero-copy: the analyzer
  // and simulator sweep the mmap'd column blocks directly, no
  // row materialization at any point. CSV and generated workloads
  // transpose into an owned SoA view once.
  TraceView view;
  if (!trace_path.empty()) {
    if (sniff_trace_binary(trace_path)) {
      view = TraceView::open_binary(trace_path, run.threads());
    } else {
      view = TraceView::from_trace(
          read_trace_any(trace_path, TraceFormat::kAuto, run.threads()),
          run.threads());
    }
    std::cout << "workload: " << view.size() << " sessions, "
              << view.span().value() / 86400.0 << " days, loaded from "
              << trace_path << (view.zero_copy() ? " (zero-copy)" : "")
              << "\n\n";
  } else {
    TraceConfig config = paper_scale ? TraceConfig::london_month_paper()
                                     : TraceConfig::london_month_scaled();
    config.threads = run.threads();
    bench::print_trace_scale(config);
    view = TraceView::from_trace(
        TraceGenerator(config, bench::metro()).generate(), run.threads());
  }
  run.set_items(static_cast<double>(view.size()), "sessions");

  SimConfig sim_config;
  sim_config.threads = run.threads();
  const Analyzer analyzer(bench::metro(), sim_config);
  const auto report = analyzer.daily_report(view);

  const std::size_t isps[] = {0, 3, 4};  // ISP-1, ISP-4, ISP-5 as in Fig. 4
  for (std::size_t m = 0; m < report.models.size(); ++m) {
    std::cout << "\n" << report.models[m]
              << " — daily savings (columns: sim. and theo. per ISP):\n";
    TextTable table({"day", "ISP-1 sim", "ISP-1 theo", "ISP-4 sim",
                     "ISP-4 theo", "ISP-5 sim", "ISP-5 theo"});
    for (std::size_t d = 0; d < report.sim[m].size(); ++d) {
      std::vector<std::string> row{std::to_string(d + 1)};
      for (std::size_t isp : isps) {
        row.push_back(fmt(report.sim[m][d][isp], 4));
        row.push_back(fmt(report.theory[m][d][isp], 4));
      }
      table.add_row(row);
    }
    table.print(std::cout);

    // Month averages + agreement, per ISP.
    std::cout << "month averages (" << report.models[m] << "):\n";
    for (std::size_t isp = 0; isp < bench::metro().isp_count(); ++isp) {
      std::vector<double> sim_series, theo_series;
      for (std::size_t d = 0; d < report.sim[m].size(); ++d) {
        sim_series.push_back(report.sim[m][d][isp]);
        theo_series.push_back(report.theory[m][d][isp]);
      }
      const auto sim_summary = summarize(sim_series);
      const auto theo_summary = summarize(theo_series);
      const double mare = mean_abs_relative_error(sim_series, theo_series);
      std::cout << "  " << bench::metro().isp(isp).name() << ": sim "
                << fmt_pct(sim_summary.mean) << " (min "
                << fmt_pct(sim_summary.min) << ", max "
                << fmt_pct(sim_summary.max) << "), theory "
                << fmt_pct(theo_summary.mean) << ", MARE "
                << fmt_pct(mare) << "\n";
      if (isp == 0) {
        run.metrics().set("isp1_mean_sim_savings_" + report.models[m],
                          sim_summary.mean);
        run.metrics().set("isp1_mean_theory_savings_" + report.models[m],
                          theo_summary.mean);
        run.metrics().set("isp1_mare_" + report.models[m], mare);
      }
    }
  }

  std::cout << "\nwhole-system headline (paper: 24-48% depending on model "
               "and factors):\n";
  const auto outcomes = analyzer.aggregate(view);
  for (const auto& o : outcomes) {
    std::cout << "  " << o.model << ": sim " << fmt_pct(o.sim_savings)
              << ", theory " << fmt_pct(o.theory_savings) << ", offload G = "
              << fmt_pct(o.offload) << "\n";
    run.metrics().set("system_sim_savings_" + o.model, o.sim_savings);
    run.metrics().set("system_theory_savings_" + o.model, o.theory_savings);
    run.metrics().set("system_offload_" + o.model, o.offload);
  }
  return run.finish();
}
