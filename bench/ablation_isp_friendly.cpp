// ablation_isp_friendly — quantifies the cost of the paper's ISP-friendly
// restriction: swarms limited to one ISP (the paper's lower bound) versus
// swarms free to match peers across ISPs (cross-ISP bytes priced at the
// documented γcross, see energy_params.h).
#include <iostream>

#include "bench_common.h"
#include "bench_json.h"
#include "core/analyzer.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  bench::Runner run("ablation_isp_friendly", argc, argv);
  bench::banner("Ablation — ISP-friendly vs cross-ISP swarms",
                "the paper restricts swarms to one ISP as a lower bound; "
                "this measures what the restriction costs");

  TraceConfig config = TraceConfig::london_month_scaled(/*days=*/10);
  config.threads = run.threads();
  bench::print_trace_scale(config);
  TraceGenerator gen(config, bench::metro());
  const Trace trace = gen.generate();
  run.set_items(static_cast<double>(trace.size()) * 2, "sessions");

  TextTable table({"setting", "offload G", "S (Valancius)", "S (Baliga)",
                   "cross-ISP share"});
  for (bool isp_friendly : {true, false}) {
    SimConfig sim_config;
    sim_config.isp_friendly = isp_friendly;
    sim_config.threads = run.threads();
    sim_config.collect_hourly = false;
    sim_config.collect_per_user = false;
    sim_config.collect_swarms = false;
    const auto result =
        HybridSimulator(bench::metro(), sim_config).run(trace);
    const std::string setting = isp_friendly ? "isp_friendly" : "cross_isp";
    std::vector<std::string> row{
        isp_friendly ? "ISP-friendly (paper)" : "cross-ISP"};
    row.push_back(fmt_pct(result.total.offload_fraction()));
    run.metrics().set("offload_" + setting, result.total.offload_fraction());
    for (const auto& params : standard_params()) {
      const EnergyAccountant accountant{CostFunctions(params)};
      row.push_back(fmt_pct(accountant.savings(result.total)));
      run.metrics().set("savings_" + setting + "_" + params.name,
                        accountant.savings(result.total));
    }
    row.push_back(fmt_pct(result.total.cross_isp.value() /
                          result.total.total().value()));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nreading: cross-ISP matching recovers extra offload for "
               "small ISPs, but the longer peering paths dilute the per-bit "
               "benefit — the paper's ISP-friendly numbers are indeed a "
               "lower bound on G and a near-optimum on energy.\n";
  return run.finish();
}
