// trace_analysis — full pipeline on a workload trace.
//
// Generates a scaled London month (or loads a trace given as argv[1] —
// CSV or binary .cltrace, sniffed automatically; see trace/trace_io.h
// and trace/trace_binary.h for the formats), runs the hybrid-CDN
// simulator, and prints dataset statistics, headline savings, and the
// simulation-vs-theory comparison per ISP.
//
// Usage:  ./build/examples/trace_analysis [trace.csv|trace.cltrace]
#include <iostream>

#include "core/analyzer.h"
#include "core/report.h"
#include "trace/filter.h"
#include "trace/synthetic.h"
#include "trace/trace_format.h"
#include "trace/trace_stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  const Metro metro = Metro::london_top5();

  Trace trace;
  if (argc > 1) {
    std::cout << "loading trace from " << argv[1] << "\n";
    trace = read_trace_any(argv[1]);
  } else {
    std::cout << "generating a scaled synthetic London month "
                 "(pass a trace path to analyse a real trace)\n";
    TraceGenerator gen(TraceConfig::london_month_scaled(/*days=*/10), metro);
    trace = gen.generate();
  }

  std::cout << "\n== dataset ==\n";
  print_trace_stats(std::cout, compute_stats(trace), trace.span);

  const Analyzer analyzer(metro, SimConfig{});

  std::cout << "\n== whole-system savings (hybrid vs pure CDN) ==\n";
  print_aggregate(std::cout, analyzer.aggregate(trace));

  std::cout << "\n== per-ISP savings, simulation vs closed form ==\n";
  TextTable table({"ISP", "sessions", "S sim (Val)", "S theo (Val)",
                   "S sim (Bal)", "S theo (Bal)"});
  for (std::uint32_t isp = 0; isp < metro.isp_count(); ++isp) {
    const Trace isp_trace = filter_by_isp(trace, isp);
    const auto agg = Analyzer(metro, SimConfig{}).aggregate(isp_trace);
    table.add_row({metro.isp(isp).name(), std::to_string(isp_trace.size()),
                   fmt(agg[0].sim_savings, 4), fmt(agg[0].theory_savings, 4),
                   fmt(agg[1].sim_savings, 4), fmt(agg[1].theory_savings, 4)});
  }
  table.print(std::cout);

  std::cout << "\n== the three popularity tiers of Fig. 2 ==\n";
  const char* names[] = {"popular", "medium", "unpopular"};
  for (std::uint32_t content = 0; content < 3; ++content) {
    const Trace swarm = filter_by_isp(filter_by_content(trace, content), 0);
    if (swarm.empty()) continue;
    std::cout << names[content] << " exemplar on ISP-1:\n";
    print_swarm_experiment(std::cout, analyzer.analyze_swarm(swarm, 0));
  }
  return 0;
}
