// carbon_credits — the carbon credit transfer scheme end to end.
//
// Simulates a scaled London month, opens a per-user carbon ledger under
// both energy models, and shows who streams carbon-free, who doesn't and
// why (niche content = small swarms = few credits). Finishes by weighting
// the same ledger with London's paired grid-intensity curve (uk_2018) to
// express the balance in grams of CO₂ rather than kWh.
//
// Usage:  ./build/examples/carbon_credits
#include <algorithm>
#include <iostream>

#include "carbon/intensity_curve.h"
#include "core/analyzer.h"
#include "core/carbon_ledger.h"
#include "core/report.h"
#include "trace/synthetic.h"
#include "util/table.h"

int main() {
  using namespace cl;
  const Metro metro = Metro::london_top5();
  TraceGenerator gen(TraceConfig::london_month_scaled(/*days=*/10), metro);
  const Trace trace = gen.generate();

  const Analyzer analyzer(metro, SimConfig{});
  const SimResult result = analyzer.simulate(trace);

  for (const EnergyParams& params : analyzer.models()) {
    const CarbonLedger ledger(result, params);
    std::cout << "\n== " << params.name << " ==\n";
    print_ledger_summary(std::cout, ledger);

    // The best and worst balances illustrate the paper's point: heavy
    // sharers of popular content offset far more than they consume, while
    // niche-content viewers keep their full footprint.
    auto entries = ledger.entries();
    std::sort(entries.begin(), entries.end(),
              [](const LedgerEntry& a, const LedgerEntry& b) {
                return a.cct > b.cct;
              });
    TextTable table({"user", "downloaded (GB)", "uploaded (GB)", "CCT"});
    std::cout << "top sharers:\n";
    for (std::size_t i = 0; i < 3 && i < entries.size(); ++i) {
      const auto& e = entries[i];
      table.add_row({std::to_string(e.user), fmt(e.downloaded.gigabytes(), 2),
                     fmt(e.uploaded.gigabytes(), 2), fmt(e.cct, 3)});
    }
    table.print(std::cout);
    std::size_t negative = 0;
    for (const auto& e : entries) {
      if (e.cct < 0) ++negative;
    }
    std::cout << "users still carbon negative: " << negative << " of "
              << entries.size()
              << " (they mostly watch niche items with tiny swarms)\n";

    // Grams, not joules: weight each hour's flows by the intensity of
    // the grid the metro runs on (uk_2018 is London's pairing).
    const IntensityCurve& grid =
        IntensityRegistry::instance().default_for_metro(metro.name());
    std::cout << "under the " << grid.name() << " grid ("
              << grid.mean() << " gCO2/kWh daily mean):\n";
    print_ledger_carbon(std::cout, ledger, grid);
  }
  return 0;
}
