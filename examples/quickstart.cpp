// quickstart — the smallest useful consumelocal program.
//
// Question: a 30-minute show gets 100,000 views per month in London.
// How much energy does peer-assisted delivery save over a classic CDN,
// and do its viewers stream carbon-free?
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/planner.h"
#include "model/carbon_credit.h"
#include "model/savings.h"
#include "topology/isp_topology.h"
#include "util/table.h"

int main() {
  using namespace cl;

  // 1. The published London ISP tree (345 exchange points, 9 PoPs, 1 core).
  const IspTopology topology = IspTopology::london_default();

  // 2. Little's law: 100K monthly views of a ~30-minute show.
  const double views_per_month = 100000;
  const Seconds mean_watch = Seconds::from_minutes(30);
  const double capacity =
      views_per_month * mean_watch.value() / Seconds::from_days(30).value();
  std::cout << "swarm capacity c = u*r = " << fmt(capacity, 1)
            << " concurrent viewers\n\n";

  // 3. Evaluate the paper's master equation under both energy models.
  for (const EnergyParams& params : standard_params()) {
    const SavingsModel model(params, topology);
    const double q_over_beta = 1.0;  // upload keeps up with the stream rate
    const double savings = model.savings(capacity, q_over_beta);
    const double offload = model.offload(capacity, q_over_beta);
    const double cct = cct_from_offload(offload, params);

    std::cout << params.name << " parameters:\n"
              << "  traffic offloaded to peers  G = " << fmt_pct(offload)
              << "\n"
              << "  end-to-end energy savings   S = " << fmt_pct(savings)
              << "\n"
              << "  per-user carbon balance   CCT = " << fmt_pct(cct) << " ("
              << (cct >= 0 ? "carbon-free streaming" : "still carbon negative")
              << ")\n";

    // 4. And the planning question: how popular must content be for its
    //    viewers to stream carbon-free?
    const Planner planner(model);
    const double neutral_c = planner.carbon_neutral_capacity(q_over_beta);
    std::cout << "  viewers turn carbon neutral at capacity "
              << fmt(neutral_c, 1) << " (= "
              << fmt(planner.views_per_month_for_capacity(neutral_c,
                                                          mean_watch),
                     0)
              << " views/month for a 30-minute show)\n\n";
  }
  return 0;
}
