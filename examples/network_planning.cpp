// network_planning — using the closed form (Eq. 12) the way the paper
// suggests: "our formula is a reasonable approximation that can
// potentially be used for network planning purposes".
//
// Answers, for both energy models and several upload ratios:
//   * how big must a swarm be before hybrid delivery saves 10/20/30 %?
//   * how popular must content be for its viewers to stream carbon-free?
//   * what is the best achievable saving (the capacity ceiling)?
//
// Usage:  ./build/examples/network_planning
#include <iostream>

#include "core/planner.h"
#include "model/carbon_credit.h"
#include "util/error.h"
#include "util/table.h"

int main() {
  using namespace cl;
  const IspTopology topology = IspTopology::london_default();
  const Seconds episode = Seconds::from_minutes(30);

  for (const EnergyParams& params : standard_params()) {
    const SavingsModel model(params, topology);
    const Planner planner(model);
    std::cout << "\n== " << params.name << " ==\n";
    std::cout << "savings ceiling at q/b=1: "
              << fmt_pct(model.savings_ceiling(1.0)) << "\n";

    TextTable table({"q/b", "target S", "needed capacity",
                     "views/month (30-min show)"});
    for (double ratio : {1.0, 0.6}) {
      for (double target : {0.10, 0.20, 0.30}) {
        std::string capacity = "unreachable";
        std::string views = "-";
        try {
          const double c = planner.capacity_for_savings(target, ratio);
          capacity = fmt(c, 2);
          views = fmt(planner.views_per_month_for_capacity(c, episode), 0);
        } catch (const InvalidArgument&) {
          // Target above the model's ceiling for this upload ratio.
        }
        table.add_row({fmt(ratio, 1), fmt_pct(target, 0), capacity, views});
      }
    }
    table.print(std::cout);

    std::cout << "carbon neutrality: viewers stream carbon-free once G >= "
              << fmt_pct(carbon_neutral_offload(params)) << ", i.e. capacity "
              << fmt(planner.carbon_neutral_capacity(1.0), 1) << " ("
              << fmt(planner.views_per_month_for_capacity(
                         planner.carbon_neutral_capacity(1.0), episode),
                     0)
              << " monthly views of a 30-minute show)\n";
  }

  std::cout << "\nplanning rule of thumb: anything in the top few hundred "
               "episodes of a metro-scale service clears every target; the "
               "long tail never pays for the double modem cost.\n";
  return 0;
}
