// live_event — the paper's live-streaming future-work scenario
// (ref [32]): a single broadcast watched by thousands of concurrent
// viewers is the best case for peer assistance.
//
// Usage:  ./build/examples/live_event [viewers]
#include <cstdlib>
#include <iostream>

#include "core/analyzer.h"
#include "ext/live.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace cl;
  const Metro metro = Metro::london_top5();

  LiveEventConfig config;
  config.viewers = argc > 1 ? static_cast<std::uint32_t>(
                                  std::strtoul(argv[1], nullptr, 10))
                            : 20000;
  std::cout << "simulating a live broadcast with " << config.viewers
            << " viewers joining within minutes of each other\n\n";

  const Trace trace = generate_live_event(metro, config, /*seed=*/2018);
  const Analyzer analyzer(metro, SimConfig{});
  const auto outcomes = analyzer.aggregate(trace);

  TextTable table({"model", "offload G", "savings S", "baseline (kWh)",
                   "hybrid (kWh)"});
  for (const auto& o : outcomes) {
    table.add_row({o.model, fmt_pct(o.offload), fmt_pct(o.sim_savings),
                   fmt(o.baseline_energy.kwh(), 3),
                   fmt(o.hybrid_energy.kwh(), 3)});
  }
  table.print(std::cout);

  std::cout << "\ncompare with the paper's on-demand numbers (24-48%): a "
               "live audience keeps every swarm at its capacity ceiling, "
               "so savings sit at the asymptote of Eq. 12 — the strongest "
               "argument for carbon-aware peer assistance in live "
               "distribution.\n";
  return 0;
}
