# Dependencies.cmake — resolve GTest and google-benchmark.
#
# Preference order: system packages (Debian libgtest-dev / libbenchmark-dev
# both ship CMake configs), then a FetchContent fallback for hosts without
# them. The fallback needs network access at configure time; offline hosts
# should install the system packages instead.
include(FetchContent)

# Tests without pthread-ridden surprises on Linux.
set(FETCHCONTENT_QUIET ON)

if(CL_BUILD_TESTS)
  find_package(GTest QUIET)
  if(NOT GTest_FOUND)
    message(STATUS "System GTest not found — falling back to FetchContent")
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    # Never install gtest alongside the project.
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    if(NOT TARGET GTest::gtest_main)
      add_library(GTest::gtest_main ALIAS gtest_main)
      add_library(GTest::gtest ALIAS gtest)
    endif()
  endif()
  include(GoogleTest)
endif()

if(CL_BUILD_BENCHES)
  find_package(benchmark QUIET)
  if(NOT benchmark_FOUND)
    message(STATUS "System google-benchmark not found — falling back to FetchContent")
    FetchContent_Declare(benchmark
      URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
      URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
    set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(benchmark)
  endif()
endif()
